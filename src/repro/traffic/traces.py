"""Synthetic trace construction: the workload mixes of the evaluation.

The paper replays two packet traces — a university-to-cloud trace [24]
and a data-center trace [19] — which we cannot redistribute. These
builders generate seeded synthetic equivalents with the characteristics
the evaluation actually depends on:

* a configurable number of concurrently active flows (moves operate on
  "state for 500 flows");
* an HTTP fraction with full request/response structure, some carrying
  known-malware bodies and some sent by outdated browsers (the IDS
  scenarios of §6 and §8.4);
* a long-tailed flow-duration distribution (~9 % of HTTP flows longer
  than 25 minutes drives the §8.4 scale-in result; up to 40 % of
  cellular flows exceed 10 minutes motivates §2.1);
* port scans from external hosts (multi-flow scan counters).

A trace is an ordered list of :class:`~repro.traffic.generator.FlowBlueprint`
interleaved round-robin so all flows stay simultaneously active — the
situation a mid-trace move must cope with.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.rng import derive_rng
from repro.traffic.generator import FlowBlueprint, PacketBlueprint, http_exchange, port_scan, tcp_flow

OUTDATED_AGENT = "Mozilla/4.0 (compatible; MSIE 6.0)"
MODERN_AGENT = "Mozilla/5.0 (X11; Linux x86_64) Gecko/2010"

#: Body planted in "malicious" HTTP replies; the IDS signature database is
#: seeded with its md5 (see :func:`malware_signatures`).
MALWARE_BODY = "MZP\x00EVIL-PAYLOAD-" + "x" * 480
BENIGN_BODY_UNIT = "The quick brown fox jumps over the lazy dog. "


def malware_signatures() -> List[str]:
    """MD5 digests the IDS should alert on."""
    return [hashlib.md5(MALWARE_BODY.encode("utf-8")).hexdigest()]


@dataclass
class TraceConfig:
    """Knobs for synthetic trace construction."""

    seed: int = 1
    n_flows: int = 100
    http_fraction: float = 0.6
    malware_fraction: float = 0.05
    outdated_browser_fraction: float = 0.1
    long_flow_fraction: float = 0.09
    data_packets: int = 8
    http_body_bytes: int = 3000
    local_net: str = "10.0.0.0/16"
    n_local_hosts: int = 50
    n_servers: int = 20
    n_scanners: int = 0
    scan_targets: int = 20
    close_flows: bool = False


@dataclass
class Trace:
    """An interleaved packet schedule plus its flow inventory."""

    packets: List[PacketBlueprint]
    flows: List[FlowBlueprint]
    config: Optional[TraceConfig] = None

    @property
    def flow_count(self) -> int:
        return len(self.flows)

    def __len__(self) -> int:
        return len(self.packets)

    def flows_of_kind(self, kind: str) -> List[FlowBlueprint]:
        return [flow for flow in self.flows if flow.kind == kind]


def _local_host(config: TraceConfig, index: int) -> str:
    return "10.0.%d.%d" % (1 + (index // 200), 1 + (index % 200))


def _server(index: int) -> str:
    return "203.0.113.%d" % (1 + (index % 250))


def _interleave(flows: Sequence[FlowBlueprint]) -> List[PacketBlueprint]:
    """Round-robin merge so all flows stay concurrently active."""
    cursors = [0] * len(flows)
    merged: List[PacketBlueprint] = []
    remaining = sum(len(flow) for flow in flows)
    while remaining:
        for index, flow in enumerate(flows):
            if cursors[index] < len(flow.packets):
                merged.append(flow.packets[cursors[index]])
                cursors[index] += 1
                remaining -= 1
    return merged


def build_university_cloud_trace(config: TraceConfig) -> Trace:
    """Local clients talking to cloud servers: mostly HTTP, some bulk TCP."""
    rng = derive_rng(config.seed, "university-cloud")
    flows: List[FlowBlueprint] = []
    for index in range(config.n_flows):
        client = _local_host(config, rng.randrange(config.n_local_hosts))
        server = _server(rng.randrange(config.n_servers))
        client_port = 20000 + index
        long_flow = rng.random() < config.long_flow_fraction
        data_packets = config.data_packets * (6 if long_flow else 1)
        if rng.random() < config.http_fraction:
            malicious = rng.random() < config.malware_fraction
            outdated = rng.random() < config.outdated_browser_fraction
            body_units = max(1, config.http_body_bytes // len(BENIGN_BODY_UNIT))
            body = MALWARE_BODY if malicious else BENIGN_BODY_UNIT * body_units
            flow = http_exchange(
                client,
                client_port,
                server,
                url="/obj/%d" % index,
                host="svc%d.cloud.example" % (index % config.n_servers),
                user_agent=OUTDATED_AGENT if outdated else MODERN_AGENT,
                reply_body=body,
                close=config.close_flows,
            )
            flow.kind = "http-malware" if malicious else "http"
            if long_flow:
                flow.kind += "-long"
        else:
            from repro.flowspace.fivetuple import FiveTuple

            flow = tcp_flow(
                FiveTuple(client, client_port, server, 443),
                data_packets=data_packets,
                close=config.close_flows,
            )
            if long_flow:
                flow.kind = "tcp-long"
        flows.append(flow)

    for scanner_index in range(config.n_scanners):
        scanner = "198.51.100.%d" % (10 + scanner_index)
        targets = [
            _local_host(config, rng.randrange(config.n_local_hosts))
            for _ in range(max(1, config.scan_targets // 4))
        ]
        probes = port_scan(scanner, targets, ports=(22, 23, 80, 445))
        flows.extend(probes)

    return Trace(_interleave(flows), flows, config)


def build_datacenter_trace(config: TraceConfig) -> Trace:
    """Rack-to-rack mix: many short flows, a few heavy ones, some HTTP."""
    rng = derive_rng(config.seed, "datacenter")
    from repro.flowspace.fivetuple import FiveTuple

    flows: List[FlowBlueprint] = []
    for index in range(config.n_flows):
        src = "10.0.%d.%d" % (rng.randrange(1, 9), rng.randrange(1, 200))
        dst = "10.0.%d.%d" % (rng.randrange(1, 9), rng.randrange(1, 200))
        if src == dst:
            dst = "10.0.9.1"
        src_port = 30000 + index
        roll = rng.random()
        if roll < 0.4:
            flow = http_exchange(
                src,
                src_port,
                dst,
                url="/svc/%d" % index,
                host="internal.example",
                reply_body=BENIGN_BODY_UNIT * max(1, config.http_body_bytes // 45),
                close=config.close_flows,
            )
        elif roll < 0.9:
            flow = tcp_flow(
                FiveTuple(src, src_port, dst, 9000 + index % 100),
                data_packets=max(2, config.data_packets // 2),
                close=config.close_flows,
            )
            flow.kind = "mice"
        else:
            flow = tcp_flow(
                FiveTuple(src, src_port, dst, 5001),
                data_packets=config.data_packets * 4,
                payload_size=1400,
                close=config.close_flows,
            )
            flow.kind = "elephant"
        flows.append(flow)
    return Trace(_interleave(flows), flows, config)


def build_cellular_trace(config: TraceConfig) -> Trace:
    """Cellular-provider mix (§2.1's always-up-to-date scenario).

    Characteristics the motivation depends on: a heavy long-flow tail
    ("up to 40 % of flows in cellular networks last longer than 10
    minutes" [36]), plus many short machine-to-machine exchanges. Set
    ``config.long_flow_fraction`` (default here: 0.4) to steer the tail.
    """
    rng = derive_rng(config.seed, "cellular")
    from repro.flowspace.fivetuple import FiveTuple

    long_fraction = config.long_flow_fraction or 0.4
    flows: List[FlowBlueprint] = []
    for index in range(config.n_flows):
        subscriber = "10.%d.%d.%d" % (
            10 + rng.randrange(4), rng.randrange(1, 250), rng.randrange(1, 250)
        )
        server = _server(rng.randrange(config.n_servers))
        src_port = 40000 + index
        long_flow = rng.random() < long_fraction
        if long_flow:
            # Long-lived session: streaming / push connection.
            flow = tcp_flow(
                FiveTuple(subscriber, src_port, server, 443),
                data_packets=config.data_packets * 8,
                payload_size=900,
                close=config.close_flows,
            )
            flow.kind = "cellular-long"
        elif rng.random() < 0.5:
            flow = http_exchange(
                subscriber, src_port, server,
                url="/api/%d" % index,
                host="api.cell.example",
                reply_body=BENIGN_BODY_UNIT * 4,
                close=config.close_flows,
            )
            flow.kind = "cellular-http"
        else:
            # Machine-to-machine heartbeat: tiny exchange.
            flow = tcp_flow(
                FiveTuple(subscriber, src_port, server, 8883),
                data_packets=2,
                payload_size=64,
                close=config.close_flows,
            )
            flow.kind = "cellular-m2m"
        flows.append(flow)
    return Trace(_interleave(flows), flows, config)
