"""Shared fixtures for the OpenNF reproduction test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.flowspace import Filter, FiveTuple
from repro.harness import Deployment
from repro.net.packet import Packet, reset_uid_counter
from repro.nfs.monitor import AssetMonitor
from repro.sim import Simulator

# Hypothesis profiles shared by every property test (test_properties,
# test_stateful_properties, test_strong_op, test_conform_kit). Tests
# override only what genuinely differs (example counts, step counts);
# the simulation-friendly baseline — no wall-clock deadline, no
# too-slow/data-too-large health-check noise — lives here once.
#
# * ``ci`` (default): few examples, derandomized for reproducible runs,
#   no example database — what the GitHub Actions job uses.
# * ``dev``: more examples with fresh randomness each run — what a
#   local bug hunt wants. Select with HYPOTHESIS_PROFILE=dev.
_COMMON = dict(
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)
settings.register_profile(
    "ci", max_examples=25, derandomize=True, database=None, **_COMMON
)
settings.register_profile("dev", max_examples=150, **_COMMON)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


@pytest.fixture(autouse=True)
def _fresh_uids():
    """Keep packet uids deterministic per test."""
    reset_uid_counter()
    yield


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def flow():
    return FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)


def make_packet(flow, flags=(), seq=0, payload="", created_at=0.0):
    return Packet(flow, tcp_flags=flags, seq=seq, payload=payload,
                  created_at=created_at)


@pytest.fixture
def two_monitor_deployment():
    """A deployment with two PRADS monitors, traffic defaulting to the first."""
    dep = Deployment()
    src = AssetMonitor(dep.sim, "prads1")
    dst = AssetMonitor(dep.sim, "prads2")
    dep.add_nf(src)
    dep.add_nf(dst)
    dep.set_default_route("prads1")
    return dep, src, dst


LOCAL_FILTER = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
