"""Tests for the §6 control applications."""

import pytest

from repro.apps import (
    FastFailureRecovery,
    LoadBalancedMonitoring,
    RollingUpgrade,
    SelectiveRemoteProcessing,
)
from repro.flowspace import Filter, FiveTuple
from repro.harness import build_multi_instance_deployment
from repro.nfs.ids import IntrusionDetector, SignatureDB
from repro.nfs.monitor import AssetMonitor
from repro.traffic import (
    MALWARE_BODY,
    OUTDATED_AGENT,
    TraceConfig,
    TraceReplayer,
    build_university_cloud_trace,
    http_exchange,
    malware_signatures,
)
from tests.conftest import make_packet


def ids_factory(sim, name):
    return IntrusionDetector(sim, name, SignatureDB(malware_signatures()),
                             scan_threshold=8)


class TestLoadBalancedMonitoring:
    def test_assign_installs_rule(self):
        dep, (a, b) = build_multi_instance_deployment(2, nf_factory=ids_factory)
        app = LoadBalancedMonitoring(dep.controller)
        app.assign("10.0.1.0/24", "inst1")
        dep.sim.run()
        flow = FiveTuple("10.0.1.5", 1000, "203.0.113.9", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        assert a.packets_processed == 1

    def test_move_prefix_transfers_per_flow_state(self):
        dep, (a, b) = build_multi_instance_deployment(2, nf_factory=ids_factory)
        app = LoadBalancedMonitoring(dep.controller, recopy_interval_ms=100.0)
        app.assign("10.0.0.0/8", "inst1")
        trace = build_university_cloud_trace(TraceConfig(seed=4, n_flows=20))
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        holder = {}
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(
                done=app.move_prefix("10.0.0.0/8", "inst1", "inst2")
            ),
        )
        dep.sim.run(until=replayer.duration_ms + 500.0)
        assert holder["done"].triggered
        assert b.conn_count() > 0 or b.packets_processed > 0
        assert app.moves_performed == 1
        app.stop()

    def test_scan_detection_survives_prefix_move(self):
        """An in-progress scan by a local host is still detected after its
        prefix moves: multi-flow counters were copied."""
        dep, (a, b) = build_multi_instance_deployment(2, nf_factory=ids_factory)
        app = LoadBalancedMonitoring(dep.controller, recopy_interval_ms=50.0)
        app.assign("10.0.0.0/8", "inst1")
        dep.sim.run()
        scanner = "10.0.1.9"
        # 5 probes at inst1 (below the threshold of 8)...
        for i in range(5):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        assert a.alerts_of("port_scan") == []
        done = app.move_prefix("10.0.0.0/8", "inst1", "inst2")
        dep.sim.run(until=dep.sim.now + 2000.0)
        assert done.triggered
        # ...then 4 more at inst2: only detectable with the copied counters.
        for i in range(5, 9):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run(until=dep.sim.now + 500.0)
        assert len(b.alerts_of("port_scan")) == 1
        app.stop()

    def test_pick_rebalance_suggests_when_imbalanced(self):
        dep, (a, b) = build_multi_instance_deployment(2, nf_factory=ids_factory)
        app = LoadBalancedMonitoring(dep.controller, imbalance_threshold=2.0)
        app.assign("10.0.1.0/24", "inst1")
        app.assign("10.0.2.0/24", "inst2")
        dep.sim.run()
        for i in range(20):
            flow = FiveTuple("10.0.1.5", 1000 + i, "203.0.113.9", 80)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        suggestion = app.pick_rebalance()
        assert suggestion is not None
        prefix, old, new = suggestion
        assert old == "inst1" and new == "inst2"

    def test_pick_rebalance_quiet_when_balanced(self):
        dep, _ = build_multi_instance_deployment(2, nf_factory=ids_factory)
        app = LoadBalancedMonitoring(dep.controller)
        app.assign("10.0.1.0/24", "inst1")
        app.assign("10.0.2.0/24", "inst2")
        dep.sim.run()
        assert app.pick_rebalance() is None


class TestFastFailureRecovery:
    def test_standby_receives_flow_state_on_key_packets(self):
        dep, (norm, stby) = build_multi_instance_deployment(
            2, nf_factory=ids_factory
        )
        app = FastFailureRecovery(dep.controller)
        ready = app.init_standby("inst1", "inst2")
        dep.sim.run()
        assert ready.triggered
        flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        assert app.updates_triggered >= 1
        assert stby.conn_count() == 1

    def test_recovery_redirects_traffic(self):
        dep, (norm, stby) = build_multi_instance_deployment(
            2, nf_factory=ids_factory
        )
        app = FastFailureRecovery(dep.controller)
        app.init_standby("inst1", "inst2")
        dep.sim.run()
        flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        norm.failed = True
        app.recover("inst1")
        dep.sim.run()
        dep.inject(make_packet(flow, payload="after-failover"))
        dep.sim.run()
        assert stby.packets_processed >= 1
        assert app.recoveries == 1

    def test_detection_continuity_after_failover(self):
        """Scan counters copied to the standby keep detection working."""
        dep, (norm, stby) = build_multi_instance_deployment(
            2, nf_factory=ids_factory
        )
        app = FastFailureRecovery(dep.controller)
        app.init_standby("inst1", "inst2")
        dep.sim.run()
        scanner = "10.0.1.9"
        for i in range(6):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        norm.failed = True
        app.recover("inst1")
        dep.sim.run()
        for i in range(6, 9):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        assert len(stby.alerts_of("port_scan")) == 1


class TestSelectiveRemoteProcessing:
    def test_alert_triggers_escalation_to_cloud(self):
        dep, (local, cloud) = build_multi_instance_deployment(
            2, nf_factory=ids_factory, name_prefix="ids"
        )
        local.detect_malware = False  # only the cloud instance checks md5
        app = SelectiveRemoteProcessing(dep.controller, "ids1", "ids2")
        # An outdated browser fetches malware; the request (with UA) is
        # seen locally, the reply should be analyzed in the cloud.
        flow = http_exchange(
            "10.0.1.2", 1234, "203.0.113.5",
            user_agent=OUTDATED_AGENT, reply_body=MALWARE_BODY,
            reply_chunk=120, close=False,
        )
        replayer = TraceReplayer(dep.sim, dep.inject, flow.packets,
                                 rate_pps=100.0)
        replayer.start()
        dep.sim.run(until=replayer.duration_ms + 1500.0)
        app.stop()
        dep.sim.run()
        assert app.escalation_count == 1
        assert len(cloud.alerts_of("malware")) == 1
        assert local.alerts_of("malware") == []

    def test_no_alert_no_escalation(self):
        dep, (local, cloud) = build_multi_instance_deployment(
            2, nf_factory=ids_factory, name_prefix="ids"
        )
        app = SelectiveRemoteProcessing(dep.controller, "ids1", "ids2")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body="benign")
        replayer = TraceReplayer(dep.sim, dep.inject, flow.packets, 500.0)
        replayer.start()
        dep.sim.run(until=replayer.duration_ms + 200.0)
        app.stop()
        dep.sim.run()
        assert app.escalation_count == 0


class TestRollingUpgrade:
    def test_upgrade_moves_all_flows(self):
        dep, (old, new) = build_multi_instance_deployment(
            2, nf_factory=AssetMonitor
        )
        trace = build_university_cloud_trace(TraceConfig(seed=5, n_flows=25))
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        app = RollingUpgrade(dep.controller)
        holder = {}
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(done=app.upgrade("inst1", "inst2")),
        )
        dep.sim.run()
        outcome = holder["done"].value
        assert outcome["report"].packets_dropped == 0
        assert new.conn_count() + new.packets_processed > 0
        assert old.conn_count() == 0

    def test_exposure_window_is_bounded_and_small(self):
        dep, _ = build_multi_instance_deployment(2, nf_factory=AssetMonitor)
        trace = build_university_cloud_trace(TraceConfig(seed=5, n_flows=25))
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        app = RollingUpgrade(dep.controller)
        holder = {}
        dep.sim.schedule(
            50.0, lambda: holder.update(done=app.upgrade("inst1", "inst2"))
        )
        dep.sim.run()
        exposure = holder["done"].value["exposure_ms"]
        # Hundreds of ms, not minutes (the wait-for-flows alternative).
        assert 0 < exposure < 2000.0
