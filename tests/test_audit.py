"""Online guarantee auditors, flight recorder, and ``repro audit``.

The auditors watch the span/record stream and verify the §5.1
guarantees *while the run happens*: every OpenNF loss-free move —
including under injected control-plane faults and with batching — must
audit clean, while the Split/Merge baseline (which genuinely drops
in-flight packets, §2.2) must produce loss violations naming the exact
flow and dropped-packet spans. A forced mid-move abort must freeze a
post-mortem flight-recorder bundle containing the operation's causal
slice. Auditing is read-only: the simulated timeline is identical with
it on or off.
"""

import json

import pytest

from repro.baselines import SplitMergeMigrate
from repro.cli import main as cli_main
from repro.harness import LOCAL_NET_FILTER, run_move_experiment
from repro.obs import (
    AuditPipeline,
    InMemoryExporter,
    render_bundle,
    replay_trace,
)

pytestmark = pytest.mark.obs


def splitmerge_operation(dep):
    return SplitMergeMigrate(
        dep.controller, "inst1", "inst2", LOCAL_NET_FILTER
    )


def normalized_timeline(result):
    """Timeline fingerprint with run-relative packet uids.

    Packet uids come from a process-global counter, so absolute uids
    differ between two runs in one test process; rebasing on the first
    injected uid makes runs with identical behaviour compare equal.
    """
    base = result.replayer.injected[0].uid
    return (
        [(p.uid - base, p.flow_key()) for p in result.replayer.injected],
        sorted(
            (uid - base, count)
            for uid, count in
            result.deployment.processed_uid_counts().items()
        ),
        result.report.duration_ms,
        result.report.retries,
        result.latency.average_added_ms,
        result.latency.max_added_ms,
    )


class TestLossFreeMovesAuditClean:
    @pytest.mark.parametrize("guarantee", ["lf", "op", "op-strong"])
    def test_opennf_moves_have_zero_violations(self, guarantee):
        result = run_move_experiment(
            guarantee=guarantee, n_flows=40, seed=5, audit=True
        )
        assert result.report.aborted is None
        assert result.deployment.obs.violations() == []

    def test_clean_under_faults_with_retries(self):
        result = run_move_experiment(
            guarantee="op", n_flows=40, seed=5, audit=True,
            fault_plan="seed=3,drop=0.05",
        )
        assert result.report.aborted is None
        assert result.report.retries > 0
        assert result.deployment.obs.violations() == []

    def test_clean_with_batched_transport(self):
        result = run_move_experiment(
            guarantee="lf", n_flows=40, seed=5, audit=True, batching=True
        )
        assert result.report.aborted is None
        assert result.deployment.obs.violations() == []

    @pytest.mark.parametrize("drop", [0.0, 0.03, 0.08])
    def test_loss_sweep_zero_violations_and_identical_timeline(self, drop):
        plan = "seed=11,drop=%s" % drop if drop else None
        plain = run_move_experiment(
            guarantee="op", n_flows=30, seed=9, fault_plan=plan
        )
        audited = run_move_experiment(
            guarantee="op", n_flows=30, seed=9, fault_plan=plan, audit=True
        )
        assert audited.deployment.obs.violations() == []
        assert normalized_timeline(plain) == normalized_timeline(audited)


class TestBaselinesViolate:
    def test_splitmerge_reports_loss_with_flow_and_spans(self):
        result = run_move_experiment(
            operation=splitmerge_operation, n_flows=60, rate_pps=6000.0,
            audit=True,
        )
        assert result.report.packets_dropped > 0
        violations = result.deployment.obs.violations()
        loss = [v for v in violations if v.check == "loss-free"]
        assert len(loss) == result.report.packets_dropped
        # Each violation names the dropped packet's flow and cites its
        # nf.drop span; cross-check against the exported spans.
        drops = {
            s.span_id: s
            for s in result.deployment.obs.exporter.find("nf.drop")
        }
        for violation in loss:
            assert violation.op_kind == "splitmerge-migrate"
            (span_id,) = violation.span_ids
            span = drops[span_id]
            assert span.attrs["flow"] == violation.flow
            assert "uid=%s" % span.attrs["uid"] in violation.detail

    def test_ng_move_loss_matches_report(self):
        result = run_move_experiment(
            guarantee="ng", n_flows=40, seed=3, audit=True
        )
        violations = result.deployment.obs.violations()
        assert len(violations) == result.report.packets_dropped > 0
        assert all(v.check == "loss-free" for v in violations)

    def test_violation_matches_ground_truth_uids(self):
        result = run_move_experiment(
            guarantee="ng", n_flows=30, seed=7, audit=True
        )
        counts = result.deployment.processed_uid_counts()
        missing = {
            p.uid for p in result.replayer.injected if p.uid not in counts
        }
        cited = {
            int(v.detail.split("uid=")[1].split(" ")[0])
            for v in result.deployment.obs.violations()
        }
        assert cited == missing


class TestSyntheticStreams:
    """Unit-level checks of the auditor state machines."""

    @staticmethod
    def _start(pipeline, trace_id=1, kind="move", guarantee="loss-free",
               src="inst1", dst="inst2", t=0.0):
        pipeline.on_record({
            "name": "op.start", "time_ms": t, "trace_id": trace_id,
            "kind": kind, "guarantee": guarantee, "src": src, "dst": dst,
        })

    @staticmethod
    def _close(pipeline, trace_id=1, t=100.0, aborted=None):
        attrs = {"trace_id": trace_id}
        if aborted:
            attrs["aborted"] = aborted
        pipeline.on_span({
            "name": "move", "span_id": trace_id, "parent_id": None,
            "start_ms": 0.0, "end_ms": t, "status": "ok", "attrs": attrs,
        })

    def test_evented_drop_resolved_by_processing(self):
        pipeline = AuditPipeline()
        self._start(pipeline)
        pipeline.on_span({
            "name": "nf.drop", "span_id": 7, "start_ms": 5.0, "end_ms": 5.0,
            "attrs": {"nf": "inst1", "uid": 42, "flow": "f", "silent": False},
        })
        pipeline.on_record({
            "name": "nf.process", "time_ms": 9.0, "nf": "inst2",
            "uid": 42, "flow": "f",
        })
        self._close(pipeline)
        assert pipeline.finalize() == []

    def test_unresolved_capture_is_loss(self):
        pipeline = AuditPipeline()
        self._start(pipeline)
        pipeline.on_record({
            "name": "ctrl.buffer", "time_ms": 5.0, "trace_id": 1,
            "uid": 42, "flow": "f", "where": "redirect",
        })
        self._close(pipeline)
        (violation,) = pipeline.finalize()
        assert violation.check == "loss-free"
        assert "never processed" in violation.detail

    def test_double_processing_is_duplicate(self):
        pipeline = AuditPipeline()
        self._start(pipeline)
        pipeline.on_record({"name": "nf.buffer", "time_ms": 4.0,
                            "nf": "inst2", "uid": 42, "flow": "f"})
        for t in (6.0, 8.0):
            pipeline.on_record({"name": "nf.process", "time_ms": t,
                                "nf": "inst2", "uid": 42, "flow": "f"})
        self._close(pipeline)
        (violation,) = pipeline.finalize()
        assert "more than once" in violation.detail

    def test_order_regression_detected(self):
        pipeline = AuditPipeline()
        self._start(pipeline, guarantee="loss-free order-preserving")
        for t, uid in ((5.0, 10), (6.0, 12), (7.0, 11)):
            pipeline.on_record({"name": "nf.process", "time_ms": t,
                                "nf": "inst2", "uid": uid, "flow": "f"})
        self._close(pipeline)
        violations = pipeline.finalize()
        assert any(v.check == "order-preserving" for v in violations)

    def test_state_imbalance_detected(self):
        pipeline = AuditPipeline()
        self._start(pipeline)
        pipeline.on_record({"name": "nf.chunk.export", "time_ms": 5.0,
                            "nf": "inst1", "scope": "perflow",
                            "key": "k1", "bytes": 100})
        self._close(pipeline)
        violations = pipeline.finalize()
        assert any(v.check == "state-conservation" for v in violations)

    def test_share_overlap_detected(self):
        pipeline = AuditPipeline()
        self._start(pipeline, kind="share", guarantee="strong")
        for span_id, (start, end) in ((5, (10.0, 14.0)), (6, (12.0, 16.0))):
            pipeline.on_span({
                "name": "share.update", "span_id": span_id,
                "start_ms": start, "end_ms": end,
                "attrs": {"trace_id": 1, "group": "h", "nf": "inst1"},
            })
        violations = pipeline.finalize()
        assert any(v.check == "share-serialization" for v in violations)


class TestFlightRecorder:
    def _aborted_run(self, **kwargs):
        def operation(dep):
            op = dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf"
            )
            dep.sim.schedule(6.0, op.abort, "operator cancelled")
            return op

        return run_move_experiment(
            n_flows=80, rate_pps=5000.0, seed=3, operation=operation,
            audit=True, **kwargs
        )

    def test_abort_freezes_bundle_with_causal_slice(self):
        result = self._aborted_run()
        assert "operator cancelled" in result.report.aborted
        recorder = result.deployment.obs.recorder
        bundles = [b for b in recorder.bundles if b["reason"] == "abort"]
        assert len(bundles) == 1
        bundle = bundles[0]
        spans = bundle["causal_slice"]["spans"]
        records = bundle["causal_slice"]["records"]
        # The operation's root span is in the slice...
        assert any(
            s["name"] == "move"
            and s["attrs"].get("trace_id") == s["span_id"]
            for s in spans
        )
        # ...alongside southbound RPC spans and buffered-packet records.
        assert any(s["name"].startswith("sb.") for s in spans)
        assert any(r["name"] == "ctrl.buffer" for r in records)
        assert bundle["metrics"]  # a full metrics snapshot rides along

    def test_violation_bundle_cites_drop_span(self):
        result = run_move_experiment(
            operation=splitmerge_operation, n_flows=40, rate_pps=6000.0,
            audit=True,
        )
        recorder = result.deployment.obs.recorder
        # One bundle per (check, operation), not one per dropped packet.
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        assert bundle["reason"] == "violation"
        cited = bundle["violation"]["span_ids"]
        slice_ids = [
            s["span_id"] for s in bundle["causal_slice"]["spans"]
        ]
        assert set(cited) <= set(slice_ids)

    def test_render_and_cli(self, tmp_path, capsys):
        result = self._aborted_run()
        bundle = result.deployment.obs.recorder.bundles[0]
        text = render_bundle(bundle)
        assert "reason=abort" in text
        assert "causal slice" in text
        path = tmp_path / "bundle.json"
        path.write_text(json.dumps(bundle, sort_keys=True))
        assert cli_main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight-recorder bundle" in out
        assert "operator cancelled" in out


class TestReplay:
    def test_replay_agrees_with_live(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        result = run_move_experiment(
            guarantee="ng", n_flows=30, seed=7, audit=True,
            deployment_kwargs={"observe": True},
        )
        obs = result.deployment.obs
        live = obs.violations()
        assert live
        with open(path, "w") as handle:
            for span in obs.exporter.spans:
                handle.write(json.dumps(
                    dict(span.to_dict(), type="span")) + "\n")
            for record in obs.exporter.records:
                handle.write(json.dumps(
                    dict(record, type="record")) + "\n")
        replayed = replay_trace(path)
        assert ([v.to_dict() for v in replayed.violations]
                == [v.to_dict() for v in live])

    def test_cli_replay_flags_violations(self, tmp_path, capsys):
        path = str(tmp_path / "run.trace.jsonl")
        result = run_move_experiment(guarantee="ng", n_flows=20, seed=3,
                                     audit=True)
        obs = result.deployment.obs
        with open(path, "w") as handle:
            for span in obs.exporter.spans:
                handle.write(json.dumps(
                    dict(span.to_dict(), type="span")) + "\n")
            for record in obs.exporter.records:
                handle.write(json.dumps(
                    dict(record, type="record")) + "\n")
        assert cli_main(["audit", path]) == 1
        assert "LOSS-FREE" in capsys.readouterr().out


class TestReplayEdgeCases:
    """Trace replay must degrade gracefully on damaged inputs."""

    def _dirty_trace_lines(self):
        result = run_move_experiment(guarantee="ng", n_flows=20, seed=3,
                                     audit=True)
        obs = result.deployment.obs
        assert obs.violations()
        lines = [json.dumps(dict(span.to_dict(), type="span"))
                 for span in obs.exporter.spans]
        lines.extend(json.dumps(dict(record, type="record"))
                     for record in obs.exporter.records)
        return lines

    def test_empty_trace_file(self, tmp_path, capsys):
        path = str(tmp_path / "empty.trace.jsonl")
        open(path, "w").close()
        pipeline = replay_trace(path)
        assert pipeline.violations == []
        assert pipeline.skipped_entries == []
        # The CLI refuses an empty file loudly rather than reporting a
        # (vacuously) clean audit.
        assert cli_main(["audit", path]) == 2
        assert "empty" in capsys.readouterr().err

    def test_truncated_line_skipped_with_warning(self, tmp_path):
        lines = self._dirty_trace_lines()
        # Simulate a torn write: chop the middle line in half.
        middle = len(lines) // 2
        lines[middle] = lines[middle][: len(lines[middle]) // 2]
        path = str(tmp_path / "torn.trace.jsonl")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.warns(UserWarning, match="skipped 1"):
            pipeline = replay_trace(path)
        assert len(pipeline.skipped_entries) == 1
        assert "truncated" in pipeline.skipped_entries[0]
        # The surviving lines still audit: the NG move's losses show.
        assert pipeline.violations

    def test_unknown_entry_kinds_skipped_not_crashed(self, tmp_path):
        lines = self._dirty_trace_lines()
        extra = [
            json.dumps({"type": "metric", "name": "future-format"}),
            json.dumps({"type": "annotation", "note": "hi"}),
            json.dumps(["not", "a", "dict"]),
        ]
        path = str(tmp_path / "newer.trace.jsonl")
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:3] + extra + lines[3:]) + "\n")
        with pytest.warns(UserWarning, match="skipped 3"):
            pipeline = replay_trace(path)
        assert len(pipeline.skipped_entries) == 3
        assert any("unknown entry kind" in s
                   for s in pipeline.skipped_entries)
        assert pipeline.violations  # valid entries were still audited


class TestExporterRing:
    def test_unbounded_by_default(self):
        exporter = InMemoryExporter()
        assert isinstance(exporter.spans, list)

    def test_ring_keeps_most_recent(self):
        exporter = InMemoryExporter(max_spans=3, max_records=2)
        for index in range(5):
            exporter.export_record({"name": "r", "i": index})
        assert [r["i"] for r in exporter.records] == [3, 4]
        exporter.clear()
        assert len(exporter.records) == 0

    def test_ring_querying_still_works(self):
        from repro.obs import Observability

        obs = Observability(enabled=True,
                            exporter=InMemoryExporter(max_spans=10))
        for index in range(15):
            obs.tracer.span("x", i=index).finish()
        assert len(obs.exporter.spans) == 10
        found = obs.exporter.find("x")
        assert len(found) == 10
        assert found[0].attrs["i"] == 5
