"""Tests for the prior-control-plane baselines (§2.2, §8.4)."""

import pytest

from repro.baselines import (
    RerouteOnlyScaler,
    SplitMergeMigrate,
    VMReplicator,
    full_state_size,
)
from repro.flowspace import Filter, FiveTuple
from repro.harness import (
    LOCAL_NET_FILTER,
    build_multi_instance_deployment,
    check_loss_free,
    run_move_experiment,
)
from repro.nf import Scope
from repro.nfs.ids import IntrusionDetector
from repro.traffic import TraceConfig, TraceReplayer, build_university_cloud_trace
from tests.conftest import make_packet


def splitmerge_operation(dep):
    return SplitMergeMigrate(
        dep.controller, "inst1", "inst2", LOCAL_NET_FILTER
    )


class TestSplitMerge:
    def test_moves_state_and_reroutes(self):
        result = run_move_experiment(operation=splitmerge_operation, n_flows=40)
        dep = result.deployment
        assert dep.nfs["inst2"].conn_count() == 40
        assert result.report.kind == "splitmerge-migrate"

    def test_drops_in_flight_packets(self):
        result = run_move_experiment(
            operation=splitmerge_operation, n_flows=60, rate_pps=6000.0
        )
        assert result.report.packets_dropped > 0
        assert not result.loss_free

    def test_buffers_halted_packets_at_orchestrator(self):
        result = run_move_experiment(
            operation=splitmerge_operation, n_flows=60, rate_pps=6000.0
        )
        assert result.report.packets_in_events > 0  # halted+flushed packets

    def test_openf_lossfree_beats_splitmerge_on_safety(self):
        splitmerge = run_move_experiment(
            operation=splitmerge_operation, n_flows=60, rate_pps=6000.0
        )
        opennf = run_move_experiment("lf", n_flows=60, rate_pps=6000.0)
        assert not splitmerge.loss_free
        assert opennf.loss_free


class TestVMReplication:
    def _loaded_ids(self, dep, name="inst1"):
        ids = dep.nfs[name]
        return ids

    def test_clone_copies_everything(self, sim):
        src = IntrusionDetector(sim, "src")
        dst = IntrusionDetector(sim, "dst")
        flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        src.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        done = VMReplicator(sim).clone(src, dst)
        sim.run()
        report = done.value
        assert report.total_chunks >= 1
        assert dst.conn_count() == src.conn_count()

    def test_clone_takes_transfer_time(self, sim):
        src = IntrusionDetector(sim, "src")
        dst = IntrusionDetector(sim, "dst")
        flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        src.receive(make_packet(flow, payload="x" * 1000))
        sim.run()
        start = sim.now
        done = VMReplicator(sim, snapshot_overhead_ms=50.0).clone(src, dst)
        sim.run()
        assert sim.now - start >= 50.0

    def test_unneeded_state_present_in_clone(self, sim):
        """The clone holds state for flows it will never serve."""
        src = IntrusionDetector(sim, "src")
        dst = IntrusionDetector(sim, "dst")
        http_flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        other_flow = FiveTuple("10.0.1.3", 999, "203.0.113.6", 443)
        src.receive(make_packet(http_flow, flags=("SYN",)))
        src.receive(make_packet(other_flow, flags=("SYN",)))
        sim.run()
        VMReplicator(sim).clone(src, dst)
        sim.run()
        # dst will only serve HTTP, yet it has the 443 flow's state too.
        assert dst.conn_count() == 2
        assert full_state_size(dst) == full_state_size(src)

    def test_abrupt_termination_creates_incorrect_entries(self, sim):
        """Flows that stop mid-stream (rebalanced away) log abnormally."""
        src = IntrusionDetector(sim, "src")
        dst = IntrusionDetector(sim, "dst")
        flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        src.receive(make_packet(flow, flags=("SYN",)))
        src.receive(make_packet(flow, payload="data"))
        sim.run()
        VMReplicator(sim).clone(src, dst)
        sim.run()
        # Traffic for the flow now goes only to dst; src finalizes the
        # stale connection abnormally. dst eventually does the same for
        # flows that stayed on src (none here, so check src only).
        src.finalize_logs()
        dst.finalize_logs()
        assert len(src.incorrect_log_entries()) == 1
        assert len(dst.incorrect_log_entries()) == 1


class TestRerouteOnly:
    def _setup(self, n_flows=20):
        dep, (a, b) = build_multi_instance_deployment(2)
        config = TraceConfig(seed=9, n_flows=n_flows, data_packets=6,
                             close_flows=True)
        trace = build_university_cloud_trace(config)
        return dep, a, b, trace

    def test_scale_out_pins_existing_flows(self):
        dep, a, b, trace = self._setup()
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        scaler = RerouteOnlyScaler(dep.controller)
        holder = {}
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(
                done=scaler.scale_out("inst1", "inst2", LOCAL_NET_FILTER)
            ),
        )
        dep.sim.run()
        report = holder["done"].value
        assert report.total_chunks == 0  # no state moved, ever
        assert any(note.startswith("pin_rules=") for note in report.notes)
        # Old flows finished at inst1; only genuinely new flows at inst2.
        assert a.packets_processed > 0

    def test_no_state_means_old_instance_keeps_load(self):
        dep, a, b, trace = self._setup()
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        scaler = RerouteOnlyScaler(dep.controller)
        dep.sim.schedule(
            replayer.duration_ms * 0.25,
            lambda: scaler.scale_out("inst1", "inst2", LOCAL_NET_FILTER),
        )
        dep.sim.run()
        # inst1 continues processing its pinned flows after the scale-out.
        assert a.packets_processed > b.packets_processed

    def test_wait_for_drain_reports_time(self):
        dep, a, b, trace = self._setup(n_flows=10)
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        scaler = RerouteOnlyScaler(dep.controller, poll_interval_ms=50.0)
        drained = scaler.wait_for_drain("inst1", LOCAL_NET_FILTER)
        dep.sim.run()
        # Flows close (close_flows=True), so the drain completes — but only
        # after the last flow ended, far later than an OpenNF move would.
        assert drained.triggered
        assert drained.value >= replayer.duration_ms * 0.9
