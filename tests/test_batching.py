"""Tests for the batched control-plane transport (§8.3).

Covers the :class:`BatchConfig`/``queue_send`` fast path at the channel
level, the zero-perturbation requirement (batching off must be
bit-identical to the classic transport), batched move correctness and
message reduction, and frame-as-a-unit behavior under injected faults.
"""

import pytest

from repro.faults.plan import Verdict
from repro.harness import run_move_experiment
from repro.net.channel import BatchConfig, ControlChannel
from repro.net.packet import reset_uid_counter
from repro.nf.protocol import FRAME_OVERHEAD_BYTES, batch_frame_size
from repro.sim import Simulator

from tests.test_determinism import snapshot


def total_control_messages(dep):
    total = 0
    for client in dep.controller.clients.values():
        total += client.to_nf.messages_sent + client.from_nf.messages_sent
    switch_client = dep.controller.switch_client
    total += switch_client.to_switch.messages_sent
    total += switch_client.from_switch.messages_sent
    return total


class TestBatchConfig:
    def test_defaults_are_enabled(self):
        config = BatchConfig()
        assert config.enabled
        assert config.batch_max_msgs >= 1

    def test_off_constructor(self):
        assert not BatchConfig.off().enabled

    @pytest.mark.parametrize("kwargs", [
        {"batch_max_msgs": 0},
        {"batch_max_bytes": 0},
        {"flush_interval_ms": -1.0},
        {"pipeline_window": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            BatchConfig(**kwargs)


class TestChannelBatching:
    def _channel(self, sim, config=None, **kwargs):
        channel = ControlChannel(sim, name="test", **kwargs)
        channel.batching = config
        return channel

    def test_queue_send_without_config_is_send(self, sim):
        batched = self._channel(sim)
        plain = self._channel(sim)
        got = []
        batched.queue_send(200, got.append, "a")
        plain.send(200, got.append, "b")
        sim.run()
        assert got == ["a", "b"]
        assert batched.messages_sent == plain.messages_sent == 1
        assert batched.bytes_sent == plain.bytes_sent
        assert batched.frames_sent == 0

    def test_flush_on_max_msgs(self, sim):
        channel = self._channel(sim, BatchConfig(batch_max_msgs=3))
        got = []
        for index in range(3):
            channel.queue_send(100, got.append, index)
        # The third message tripped the msgs threshold synchronously.
        assert channel.frames_sent == 1
        assert channel.messages_coalesced == 3
        sim.run()
        assert got == [0, 1, 2]
        # One message on the wire, not three.
        assert channel.messages_sent == 1

    def test_flush_on_max_bytes(self, sim):
        channel = self._channel(
            sim, BatchConfig(batch_max_msgs=100, batch_max_bytes=250)
        )
        got = []
        channel.queue_send(100, got.append, "a")
        assert channel.frames_sent == 0
        channel.queue_send(200, got.append, "b")
        assert channel.frames_sent == 1
        sim.run()
        assert got == ["a", "b"]

    def test_interval_flush(self, sim):
        channel = self._channel(
            sim, BatchConfig(batch_max_msgs=100, flush_interval_ms=2.0)
        )
        got = []
        channel.queue_send(100, lambda: got.append(sim.now))
        sim.run()
        assert channel.frames_sent == 1
        # Queued for flush_interval_ms, then transferred.
        assert got[0] >= 2.0

    def test_plain_send_is_an_ordering_barrier(self, sim):
        channel = self._channel(sim, BatchConfig(batch_max_msgs=100))
        order = []
        channel.queue_send(100, order.append, "queued")
        channel.send(100, order.append, "direct")
        # The pending frame was flushed by the plain send...
        assert channel.frames_sent == 1
        sim.run()
        # ...and delivered first: FIFO holds across both paths.
        assert order == ["queued", "direct"]

    def test_frame_smaller_than_sum_of_messages(self, sim):
        config = BatchConfig(batch_max_msgs=4)
        batched = self._channel(sim, config)
        plain = self._channel(sim)
        for index in range(4):
            batched.queue_send(200, lambda: None)
            plain.send(200, lambda: None)
        sim.run()
        assert batched.frames_sent == 1
        assert batched.bytes_sent == batch_frame_size([200] * 4)
        assert batched.bytes_sent < plain.bytes_sent
        # One framing overhead total instead of one per message.
        assert batched.bytes_sent == (
            FRAME_OVERHEAD_BYTES + 4 * ((200 - FRAME_OVERHEAD_BYTES) + 4)
        )

    def test_coalesced_group_delivered_as_one_call(self, sim):
        channel = self._channel(sim, BatchConfig(batch_max_msgs=100))
        calls = []

        def group_handler(items):
            calls.append(list(items))

        for index in range(3):
            channel.queue_send(100, lambda _c: None, index,
                               coalesce=group_handler)
        channel.flush()
        sim.run()
        # One handler invocation with all three payloads, not three.
        assert calls == [[0, 1, 2]]

    def test_coalesce_groups_split_by_interleaved_traffic(self, sim):
        channel = self._channel(sim, BatchConfig(batch_max_msgs=100))
        calls = []
        plain = []

        def group_handler(items):
            calls.append(list(items))

        channel.queue_send(100, lambda _c: None, "a", coalesce=group_handler)
        channel.queue_send(100, plain.append, "x")
        channel.queue_send(100, lambda _c: None, "b", coalesce=group_handler)
        channel.flush()
        sim.run()
        # The interleaved plain message splits the run; order preserved.
        assert calls == [["a"], ["b"]]
        assert plain == ["x"]

    def test_coalesce_requires_single_payload(self, sim):
        channel = self._channel(sim, BatchConfig())
        with pytest.raises(ValueError):
            channel.queue_send(100, lambda a, b: None, 1, 2,
                               coalesce=lambda items: None)


class _DuplicateEverything:
    """A fault injector stub that duplicates every message."""

    def on_send(self, now):
        return Verdict(deliver=True, copies=2)


class TestFrameFaultUnit:
    def test_duplicated_frame_dedups_as_a_unit(self, sim):
        channel = ControlChannel(sim, name="dup-test")
        channel.batching = BatchConfig(batch_max_msgs=3)
        channel.faults = _DuplicateEverything()
        got = []
        for index in range(3):
            channel.queue_send(100, got.append, index)
        sim.run()
        # The frame was sent twice by the injector but applied once:
        # none of the three messages double-applied.
        assert got == [0, 1, 2]
        assert channel.frames_deduplicated == 1


class TestZeroPerturbation:
    """Batching off must be bit-identical to the classic transport."""

    @pytest.mark.parametrize("guarantee", ["ng", "lf", "op"])
    def test_batching_off_is_bit_identical(self, guarantee):
        reset_uid_counter()
        plain = snapshot(run_move_experiment(guarantee, n_flows=40, seed=5))
        reset_uid_counter()
        disabled = snapshot(
            run_move_experiment(guarantee, n_flows=40, seed=5,
                                batching=BatchConfig.off())
        )
        assert plain == disabled

    def test_disabled_config_is_normalized_away(self):
        result = run_move_experiment("lf", n_flows=10, seed=5,
                                     batching=BatchConfig.off())
        assert result.deployment.controller.batching is None


class TestBatchedMove:
    def _pair(self, guarantee, **kwargs):
        reset_uid_counter()
        off = run_move_experiment(guarantee, n_flows=120, rate_pps=5000.0,
                                  seed=5, **kwargs)
        reset_uid_counter()
        on = run_move_experiment(guarantee, n_flows=120, rate_pps=5000.0,
                                 seed=5, batching=True, **kwargs)
        return off, on

    def test_lf_move_halves_control_messages(self):
        off, on = self._pair("lf")
        assert on.loss_free, on.loss_free_detail
        assert on.report.aborted is None
        off_msgs = total_control_messages(off.deployment)
        on_msgs = total_control_messages(on.deployment)
        assert on_msgs * 2 <= off_msgs, (
            "expected >=2x fewer control messages, got %d vs %d"
            % (on_msgs, off_msgs)
        )

    def test_lf_move_not_slower(self):
        off, on = self._pair("lf")
        assert on.duration_ms <= off.duration_ms * 1.02

    def test_op_move_stays_order_preserving(self):
        _off, on = self._pair("op")
        assert on.loss_free, on.loss_free_detail
        assert on.order_preserving, on.order_detail

    def test_batched_transfer_uses_frames(self):
        _off, on = self._pair("lf")
        channels = []
        for client in on.deployment.controller.clients.values():
            channels.extend([client.to_nf, client.from_nf])
        assert sum(ch.frames_sent for ch in channels) > 0
        assert sum(ch.messages_coalesced for ch in channels) > 0


class TestBatchedUnderFaults:
    """Batched transport composes with the fault plans of the faults PR."""

    @pytest.mark.parametrize("spec", [
        "seed=3,drop=0.05",
        "seed=5,dup=0.08",
        "seed=7,drop=0.04,dup=0.04,delay=0.02",
    ])
    def test_exactly_once_processing(self, spec):
        result = run_move_experiment("op", n_flows=60, rate_pps=5000.0,
                                     seed=3, batching=True, fault_plan=spec)
        assert result.report.aborted is None
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail
        counts = result.deployment.processed_uid_counts()
        duplicates = [uid for uid, n in counts.items() if n > 1]
        assert not duplicates, (
            "retransmitted frames double-applied packets: %s" % duplicates
        )

    def test_dropped_frames_recovered_by_retry(self):
        result = run_move_experiment("lf", n_flows=60, rate_pps=5000.0,
                                     seed=3, batching=True,
                                     fault_plan="seed=3,drop=0.08")
        assert result.report.aborted is None
        assert result.loss_free, result.loss_free_detail
        # Losses actually happened and the retry machinery covered them.
        plan = result.deployment.faults
        assert plan.messages_dropped > 0
        assert result.report.retries > 0
