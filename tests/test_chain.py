"""Chain-wide operations: move_chain / scale_chain.

The chain is the unit of control: one declarative spec, one multicast
data-path rule, one composite operation migrating hops tail-to-head so
no packet ever crosses a half-migrated middle. These tests pin the
spec-model validation, the sequencing invariant, the chain-level
auditor's verdicts (clean loss-free chains, exact hop citations for
deliberately-dirty ones), rollback on abort, scale-out, the sharded
facade, and the conformance-kit chain cells at shards 1 and 2.
"""

import warnings

import pytest

from repro.conformance import (
    ScheduleSpec,
    run_schedule,
    spec_for_chain_cell,
)
from repro.conformance.runner import NF_FACTORIES
from repro.controller.chain import ChainSpec
from repro.flowspace import Filter
from repro.harness import (
    Deployment,
    LOCAL_NET_FILTER,
    check_chain_loss_free,
    coerce_guarantee,
    run_move_experiment,
)
from repro.controller.move import Guarantee
from repro.traffic.replay import TraceReplayer
from repro.traffic.traces import TraceConfig, build_university_cloud_trace

HOPS = [("ids", ("i1", "i2")), ("nat", ("n1", "n2")), ("proxy", ("p1", "p2"))]
DST_MAP = {"ids": "i2", "nat": "n2", "proxy": "p2"}
MATRIX_FAULTS = "seed=3,drop=0.03,dup=0.02,delay=0.2,delay_ms=2.0"


def build_chain_deployment(shards=1, faults=None, batching=None):
    """Six NFs in three hops behind one multicast chain rule."""
    dep = Deployment(audit=True, shards=shards, faults=faults,
                     batching=batching)
    nfs = {}
    for kind, names in HOPS:
        for name in names:
            nf = NF_FACTORIES[kind](dep.sim, name)
            dep.add_nf(nf)
            nfs[name] = nf
    chain = dep.chain("edge", HOPS, flt=LOCAL_NET_FILTER)
    return dep, chain, nfs


def replay_trace(dep, n_flows=40, data_packets=10, rate_pps=2500.0):
    trace = build_university_cloud_trace(TraceConfig(
        seed=5, n_flows=n_flows, data_packets=data_packets,
    ))
    replayer = TraceReplayer(dep.sim, dep.inject, trace.packets,
                             rate_pps=rate_pps)
    replayer.start()
    return replayer


def run_chain_move(dep, chain, guarantee="lf", hop_guarantees=None,
                   abort_after_ms=None):
    replayer = replay_trace(dep)
    holder = {}

    def kickoff():
        holder["op"] = dep.controller.move_chain(
            chain, LOCAL_NET_FILTER, DST_MAP,
            guarantee=guarantee, hop_guarantees=hop_guarantees,
        )
        if abort_after_ms is not None:
            dep.sim.schedule(abort_after_ms,
                             lambda: holder["op"].abort("test abort"))

    dep.sim.schedule(replayer.duration_ms / 2.0, kickoff)
    dep.sim.run()
    return holder["op"]


def hop_instance_pairs(nfs):
    return [(hop, [nfs[n] for n in names]) for hop, names in HOPS]


class TestChainSpec:
    def test_rejects_empty_hop_list(self):
        with pytest.raises(ValueError, match="at least one hop"):
            ChainSpec("c", [], LOCAL_NET_FILTER)

    def test_rejects_duplicate_hop_names(self):
        with pytest.raises(ValueError, match="unique"):
            ChainSpec("c", [("ids", "i1"), ("ids", "i2")], LOCAL_NET_FILTER)

    def test_rejects_instance_serving_two_hops(self):
        with pytest.raises(ValueError, match="only one chain hop"):
            ChainSpec("c", [("ids", "i1"), ("nat", ("i1", "n2"))],
                      LOCAL_NET_FILTER)

    def test_rejects_link_to_unknown_hop(self):
        with pytest.raises(ValueError, match="unknown hop"):
            ChainSpec("c", [("ids", "i1")], LOCAL_NET_FILTER,
                      links=[("ids", "nat")])

    def test_normalizes_bare_string_instances(self):
        spec = ChainSpec("c", [("ids", "i1"), ("nat", ("n1", "n2"))],
                         LOCAL_NET_FILTER)
        assert spec.hops[0] == ("ids", ("i1",))
        assert spec.hops[1] == ("nat", ("n1", "n2"))


class TestChainDataPath:
    def test_multicast_rule_reaches_every_active_hop(self):
        dep, chain, nfs = build_chain_deployment()
        replay_trace(dep, n_flows=10, data_packets=4)
        dep.sim.run()
        # One injection, every hop's active instance processes it; the
        # standby instances see nothing.
        for active in ("i1", "n1", "p1"):
            assert nfs[active].processing_log
        for standby in ("i2", "n2", "p2"):
            assert not nfs[standby].processing_log

    def test_chain_builder_rejects_unknown_instance(self):
        dep = Deployment()
        dep.add_nf(NF_FACTORIES["ids"](dep.sim, "i1"))
        with pytest.raises(ValueError, match="ghost"):
            dep.chain("c", [("ids", ("i1", "ghost"))], flt=LOCAL_NET_FILTER)


class TestMoveChain:
    def test_hops_migrate_tail_to_head(self):
        dep, chain, nfs = build_chain_deployment()
        op = run_chain_move(dep, chain, guarantee="lf")
        report = op.done.value
        assert report.aborted is None
        # Execution order is the reverse of chain order: proxy first,
        # ids last — the old-prefix/new-suffix invariant.
        assert [r.src for r in op.hop_reports] == ["p1", "n1", "i1"]
        finishes = [r.finished_at for r in op.hop_reports]
        assert finishes == sorted(finishes)
        assert [hop.active for hop in chain.hops] == ["i2", "n2", "p2"]

    def test_loss_free_chain_is_clean(self):
        dep, chain, nfs = build_chain_deployment()
        run_chain_move(dep, chain, guarantee="lf")
        ok, detail = check_chain_loss_free(dep.switch,
                                           hop_instance_pairs(nfs))
        assert ok, detail
        assert dep.obs.violations() == []

    def test_loss_free_chain_under_faults_batching_and_sharding(self):
        """The acceptance cell: 3-hop LF chain, faults + batching, 2 shards."""
        dep, chain, nfs = build_chain_deployment(
            shards=2, faults=MATRIX_FAULTS, batching=True,
        )
        op = run_chain_move(dep, chain, guarantee="lf")
        assert op.done.value.aborted is None
        ok, detail = check_chain_loss_free(dep.switch,
                                           hop_instance_pairs(nfs))
        assert ok, detail
        assert dep.obs.violations() == []
        assert [hop.active for hop in chain.hops] == ["i2", "n2", "p2"]

    def test_ng_middle_hop_cited_by_chain_auditor(self):
        dep, chain, nfs = build_chain_deployment()
        run_chain_move(dep, chain, guarantee="lf",
                       hop_guarantees={"nat": "ng"})
        chain_violations = [
            v for v in dep.obs.violations() if v.check == "chain-loss-free"
        ]
        assert chain_violations
        # The citation is exact: only the deliberately-dirty hop.
        assert {v.nf for v in chain_violations} == {"nat"}

    def test_abort_rolls_back_completed_hops(self):
        dep, chain, nfs = build_chain_deployment()
        op = run_chain_move(dep, chain, guarantee="lf", abort_after_ms=150.0)
        report = op.done.value
        assert report.aborted
        assert [hop.active for hop in chain.hops] == ["i1", "n1", "p1"]
        rollbacks = [n for n in report.notes if n.startswith("rolled back")]
        assert rollbacks and len(rollbacks) == len(set(rollbacks))
        assert dep.controller._admission == {}

    def test_rejects_destination_outside_hop(self):
        dep, chain, _ = build_chain_deployment()
        with pytest.raises(ValueError, match="not a declared instance"):
            dep.controller.move_chain(chain, LOCAL_NET_FILTER,
                                      {"ids": "n2"}, guarantee="lf")

    def test_rejects_unknown_hop_in_dst_map(self):
        dep, chain, _ = build_chain_deployment()
        with pytest.raises(ValueError, match="unknown hops"):
            dep.controller.move_chain(chain, LOCAL_NET_FILTER,
                                      {"firewall": "i2"}, guarantee="lf")


class TestScaleChain:
    def test_scale_out_splits_subspace_to_new_instance(self):
        dep, chain, nfs = build_chain_deployment()
        replayer = replay_trace(dep)
        holder = {}

        def kickoff():
            holder["op"] = dep.controller.scale_chain(
                chain, "nat", "n2", flt=LOCAL_NET_FILTER, guarantee="lf",
            )

        dep.sim.schedule(replayer.duration_ms / 2.0, kickoff)
        dep.sim.run()
        report = holder["op"].done.value
        assert report.aborted is None
        assert "n2" in chain.hop("nat").instances
        assert len(chain.overrides) == 1
        assert nfs["n2"].processing_log
        ok, detail = check_chain_loss_free(dep.switch,
                                           hop_instance_pairs(nfs))
        assert ok, detail


class TestChainConformanceCells:
    @pytest.mark.parametrize("shards", [1, 2])
    def test_lf_chain_cell_is_clean(self, shards):
        spec = spec_for_chain_cell(shards=shards, faults=True, batching=True)
        # Chain cells replay bit-for-bit through the JSON round-trip,
        # like every other corpus schedule.
        spec = ScheduleSpec.from_json(spec.to_json())
        result = run_schedule(spec)
        assert result.clean, result.summary()

    def test_ng_hop_cell_is_expected_dirty(self):
        spec = spec_for_chain_cell(hop_guarantees={"nat": "ng"})
        assert spec.expected_dirty
        assert run_schedule(spec).ok

    def test_label_names_the_chain(self):
        spec = spec_for_chain_cell(shards=2)
        assert "chain[ids-nat-proxy]:lf" in spec.label()
        assert "shards2" in spec.label()


class TestBlessedApi:
    def test_top_level_surface_exposes_chain_types(self):
        import repro

        for name in ("Chain", "ChainOperation", "ChainSpec", "Deployment",
                     "Guarantee", "Operation", "Filter", "FaultPlan"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_string_guarantee_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="plain string guarantee"):
            assert coerce_guarantee("loss-free") is Guarantee.LOSS_FREE

    def test_enum_guarantee_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (coerce_guarantee(Guarantee.LOSS_FREE)
                    is Guarantee.LOSS_FREE)

    def test_experiment_harness_routes_through_coercion(self):
        with pytest.warns(DeprecationWarning, match="plain string guarantee"):
            result = run_move_experiment(guarantee="loss-free", n_flows=4,
                                         data_packets=2)
        assert result.loss_free, result.loss_free_detail


class TestShardedFacade:
    def test_move_chain_lands_on_home_replica(self):
        dep, chain, nfs = build_chain_deployment(shards=2)
        op = run_chain_move(dep, chain, guarantee="lf+op")
        assert op.done.value.aborted is None
        assert [hop.active for hop in chain.hops] == ["i2", "n2", "p2"]
        ok, detail = check_chain_loss_free(dep.switch,
                                           hop_instance_pairs(nfs))
        assert ok, detail
