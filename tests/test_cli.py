"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "opennf-repro" in out

    def test_demo_move_lossfree(self, capsys):
        code = main(["demo-move", "--flows", "30", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "loss-free: yes" in out
        assert "move[loss-free]" in out

    def test_demo_move_op_with_extensions(self, capsys):
        code = main([
            "demo-move", "--guarantee", "op", "--flows", "30",
            "--compress", "--peer-to-peer",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "order-preserving: yes" in out

    def test_demo_move_ng_reports_violation(self, capsys):
        code = main(["demo-move", "--guarantee", "ng", "--flows", "30",
                     "--rate", "6000"])
        out = capsys.readouterr().out
        assert code == 0  # the demo ran; the guarantee simply isn't held
        assert "loss-free: NO" in out

    def test_validate_passes(self, capsys):
        code = main(["validate", "--seeds", "1", "--flows", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all guarantees hold" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
