"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "opennf-repro" in out

    def test_demo_move_lossfree(self, capsys):
        code = main(["demo-move", "--flows", "30", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "loss-free: yes" in out
        assert "move[loss-free]" in out

    def test_demo_move_op_with_extensions(self, capsys):
        code = main([
            "demo-move", "--guarantee", "op", "--flows", "30",
            "--compress", "--peer-to-peer",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "order-preserving: yes" in out

    def test_demo_move_ng_reports_violation(self, capsys):
        code = main(["demo-move", "--guarantee", "ng", "--flows", "30",
                     "--rate", "6000"])
        out = capsys.readouterr().out
        assert code == 0  # the demo ran; the guarantee simply isn't held
        assert "loss-free: NO" in out

    def test_validate_passes(self, capsys):
        code = main(["validate", "--seeds", "1", "--flows", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all guarantees hold" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.mark.obs
class TestTraceCommand:
    def test_trace_renders_timeline(self, capsys):
        code = main(["trace", "--guarantee", "op", "--flows", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "move.state-transfer" in out
        assert "move.dst-release" in out
        assert "metrics:" in out
        assert "ms" in out

    def test_trace_json_dump(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        code = main(["trace", "--guarantee", "loss-free", "--flows", "20",
                     "--json", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        import json

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert any(
            entry["type"] == "span" and entry["name"] == "move"
            for entry in lines
        )
        assert any(entry["type"] == "record" for entry in lines)
