"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert "opennf-repro" in out

    def test_demo_move_lossfree(self, capsys):
        code = main(["demo-move", "--flows", "30", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "loss-free: yes" in out
        assert "move[loss-free]" in out

    def test_demo_move_op_with_extensions(self, capsys):
        code = main([
            "demo-move", "--guarantee", "op", "--flows", "30",
            "--compress", "--peer-to-peer",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "order-preserving: yes" in out

    def test_demo_move_ng_reports_violation(self, capsys):
        code = main(["demo-move", "--guarantee", "ng", "--flows", "30",
                     "--rate", "6000"])
        out = capsys.readouterr().out
        assert code == 0  # the demo ran; the guarantee simply isn't held
        assert "loss-free: NO" in out

    def test_validate_passes(self, capsys):
        code = main(["validate", "--seeds", "1", "--flows", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all guarantees hold" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestChainCommand:
    def test_chain_move_clean(self, capsys):
        code = main(["chain", "--guarantee", "lf", "--flows", "20"])
        out = capsys.readouterr().out
        assert code == 0
        assert "chain[loss-free]" in out
        assert "chain loss-free: yes" in out
        assert "actives: ids=ids2" in out
        # Tail-to-head: the proxy hop's move is reported first.
        assert out.index("hop proxy1") < out.index("hop ids1")

    def test_chain_ng_hop_reports_violations(self, capsys):
        # The default 40-flow trace keeps packets in flight through the
        # NG hop's migration window (20 flows would slip through clean).
        code = main(["chain", "--guarantee", "lf",
                     "--hop-guarantee", "nat=ng"])
        out = capsys.readouterr().out
        assert code == 1
        assert "chain loss-free: NO" in out
        assert "never crossed hop 'nat'" in out

    def test_chain_abort_rolls_back(self, capsys):
        code = main(["chain", "--guarantee", "lf", "--flows", "20",
                     "--abort-at", "120"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ABORTED" in out
        assert "rolled back hop" in out
        assert "actives: ids=ids1" in out

    def test_chain_rejects_unknown_hop_override(self, capsys):
        code = main(["chain", "--hop-guarantee", "firewall=ng"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown hop" in err


@pytest.mark.obs
class TestTraceCommand:
    def test_trace_renders_timeline(self, capsys):
        code = main(["trace", "--guarantee", "op", "--flows", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "move.state-transfer" in out
        assert "move.dst-release" in out
        assert "metrics:" in out
        assert "ms" in out

    def test_trace_json_dump(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        code = main(["trace", "--guarantee", "loss-free", "--flows", "20",
                     "--json", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        import json

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert any(
            entry["type"] == "span" and entry["name"] == "move"
            for entry in lines
        )
        assert any(entry["type"] == "record" for entry in lines)


@pytest.mark.obs
class TestTopCommand:
    def test_top_streams_snapshots_and_exports(self, tmp_path, capsys):
        path = tmp_path / "windows.jsonl"
        code = main([
            "top", "--flows", "20", "--interval", "50",
            "--jsonl", str(path), "--prometheus",
        ])
        out = capsys.readouterr().out
        assert code == 0
        # Periodic frames plus the final one: events, shard inboxes,
        # per-NF rates, and the sampler's keep counters.
        assert out.count("ops-in-flight") >= 2
        assert "shard 0:" in out
        assert "nf inst1:" in out
        assert "pkt/s" in out
        assert "sampling:" in out
        assert "move[loss-free]" in out
        # Exports: JSONL windows on disk, Prometheus text on stdout.
        import json

        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines and all(e["type"] == "timeseries" for e in lines)
        assert "_rate_per_s" in out or "_last" in out

    def test_top_sharded_offloaded(self, capsys):
        code = main(["top", "--flows", "20", "--shards", "2",
                     "--offload", "--interval", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard 0:" in out and "shard 1:" in out
