"""The verified-migration conformance kit, end to end.

Covers the full NF × guarantee × faults × batching matrix (every cell
must be clean or *explicitly* expected-dirty — no silent skips), the
Split/Merge baseline's non-conformance with its persisted
counterexample, the hypothesis interleaving machines, the formal
property checkers (including proof that they *can* fail), corpus
replay, the isolation property over concurrent operations, and the
``repro conform`` CLI.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.conformance import (
    BurstSpec,
    Cell,
    OpSpec,
    ScheduleSpec,
    check_isolation,
    check_no_phantom_state,
    hunt_counterexample,
    load_corpus,
    make_conformance_machine,
    matrix_cells,
    parse_filter_repr,
    replay_entry,
    run_cell,
    run_schedule,
)
from repro.flowspace import Filter

pytestmark = pytest.mark.conformance

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


# ------------------------------------------------------------------- matrix


@pytest.mark.parametrize(
    "cell", matrix_cells(), ids=lambda cell: cell.label()
)
def test_matrix_cell(cell):
    """Every NF × guarantee × faults × batching cell is conformant.

    "Conformant" means *clean* (no auditor violation, no property
    failure, loss-free ground truth) — or dirty where dirt is the
    documented design (NG moves drop under load). There is no skip
    path: a cell that cannot run is a failure.
    """
    result = run_cell(cell)
    assert result.ok, "%s: %s" % (cell.label(), result.summary())
    if not result.clean:
        # Expected-dirty cells must say *why* they are dirty — a dirty
        # verdict with no cited check would be a silent no-op run.
        assert result.check_kinds(), cell.label()
        assert cell.guarantee == "ng", cell.label()


def test_matrix_covers_every_axis():
    cells = matrix_cells()
    assert len(cells) == 7 * 4 * 2 * 2
    assert len(set(cells)) == len(cells)
    assert {c.guarantee for c in cells} == {"ng", "lf", "lf+op",
                                           "strong-share"}
    assert sum(1 for c in cells if c.faults and c.batching) == 7 * 4


# -------------------------------------------------- Split/Merge is broken


def test_splitmerge_baseline_is_non_conformant():
    """§2.2 / Fig. 5: the Split/Merge migrate genuinely loses packets."""
    spec = ScheduleSpec(
        nf="monitor", seed=11, n_flows=8, data_packets=4,
        ops=[OpSpec(kind="splitmerge", at_ms=4.0)],
        bursts=[BurstSpec(at_ms=5.0, packets=3)],
    )
    result = run_schedule(spec)
    assert not result.clean
    assert "loss-free" in result.check_kinds()
    # ... and the kit knows this dirt is the baseline's design:
    assert result.expected_dirty and result.ok


def test_hunted_splitmerge_counterexample_is_persisted():
    """The shrunk counterexample the hunt found lives in the corpus."""
    names = {entry.name for entry in load_corpus(CORPUS_DIR)}
    assert "splitmerge-loss" in names
    entry = next(e for e in load_corpus(CORPUS_DIR)
                 if e.name == "splitmerge-loss")
    assert entry.expect == "dirty"
    assert "loss-free" in entry.checks
    assert any(op.kind == "splitmerge" for op in entry.spec.ops)


def test_hunt_shrinks_a_splitmerge_counterexample():
    """Derandomized hunting finds (and shrinks) the defect from scratch."""
    spec, result = hunt_counterexample("splitmerge", max_examples=60)
    assert not result.clean
    assert "loss-free" in result.check_kinds()
    # Shrinking pressure: the minimal example needs no racing bursts.
    assert len(spec.ops) == 1


# ---------------------------------------------------- interleaving machines


MonitorLFMachine = make_conformance_machine(nf="monitor", guarantee="lf")
TestMonitorLFInterleavings = MonitorLFMachine.TestCase
TestMonitorLFInterleavings.settings = settings(
    max_examples=8, stateful_step_count=10
)

NatStrongMachine = make_conformance_machine(nf="nat", guarantee="op-strong")
TestNatStrongInterleavings = NatStrongMachine.TestCase
TestNatStrongInterleavings.settings = settings(
    max_examples=5, stateful_step_count=8
)


# ----------------------------------------------------- property checkers


def _op_start(trace_id, at, prefix="10.0.0.0/8", kind="move",
              src="inst1", dst="inst2"):
    return (at, "record", {
        "name": "op.start", "trace_id": trace_id, "kind": kind,
        "src": src, "dst": dst,
        "filter": "Filter~{nw_src=%s}" % prefix,
    })


def _op_end(trace_id, at, aborted=None):
    return (at, "record",
            {"name": "op.end", "trace_id": trace_id, "aborted": aborted})


def _chunk(name, nf, key, at):
    return (at, "record",
            {"name": name, "nf": nf, "scope": "per", "key": key})


class TestPropertyCheckers:
    """The checkers must be able to *fail* — on synthetic bad traces."""

    def test_isolation_flags_overlapping_intersecting_ops(self):
        entries = [
            _op_start(1, 1.0, prefix="10.0.0.0/8"),
            _op_start(2, 2.0, prefix="10.0.1.0/24", src="inst2",
                      dst="inst1"),
            _op_end(1, 5.0),
            _op_end(2, 6.0),
        ]
        failures = check_isolation(entries)
        assert len(failures) == 1
        assert failures[0].prop == "isolation"
        assert "intersecting flow space" in failures[0].detail

    def test_isolation_accepts_disjoint_or_serialized_ops(self):
        disjoint = [
            _op_start(1, 1.0, prefix="10.0.1.0/24"),
            _op_start(2, 2.0, prefix="10.0.2.0/24"),
            _op_end(1, 5.0), _op_end(2, 6.0),
        ]
        serialized = [
            _op_start(1, 1.0), _op_end(1, 2.0),
            _op_start(2, 3.0), _op_end(2, 4.0),
        ]
        assert check_isolation(disjoint) == []
        assert check_isolation(serialized) == []

    def test_unended_op_window_extends_forever(self):
        entries = [
            _op_start(1, 1.0),          # never ends
            _op_start(2, 50.0),
            _op_end(2, 51.0),
        ]
        assert len(check_isolation(entries)) == 1

    def test_phantom_state_flags_unexported_import(self):
        entries = [
            _op_start(1, 1.0),
            _chunk("nf.chunk.export", "inst1", "k1", 2.0),
            _chunk("nf.chunk.import", "inst2", "k1", 3.0),
            _chunk("nf.chunk.import", "inst2", "k2", 3.5),  # phantom
            _op_end(1, 4.0),
        ]
        failures = check_no_phantom_state(entries)
        assert failures
        assert all(f.prop == "no-phantom-state" for f in failures)
        assert any("k2" in f.detail for f in failures)

    def test_phantom_state_flags_import_before_export(self):
        entries = [
            _op_start(1, 1.0),
            _chunk("nf.chunk.import", "inst2", "k1", 2.0),
            _chunk("nf.chunk.export", "inst1", "k1", 3.0),
            _op_end(1, 4.0),
        ]
        failures = check_no_phantom_state(entries)
        assert any("ran ahead" in f.detail for f in failures)

    def test_aborted_op_exempt_from_phantom_check(self):
        entries = [
            _op_start(1, 1.0),
            _chunk("nf.chunk.import", "inst1", "k1", 2.0),  # restore put
            _op_end(1, 3.0, aborted="fault"),
        ]
        assert check_no_phantom_state(entries) == []

    def test_parse_filter_repr_roundtrip(self):
        flt = Filter({"nw_src": "10.0.0.0/8", "tp_dst": 80},
                     symmetric=True)
        parsed = parse_filter_repr(repr(flt))
        assert parsed is not None
        assert repr(parsed) == repr(flt)
        assert parse_filter_repr(repr(Filter.wildcard())) is not None
        assert parse_filter_repr("garbage") is None
        assert parse_filter_repr(None) is None


# -------------------------------------------------- isolation, live (S4)


_OVERLAPPING = [
    ("10.0.0.0/8", "10.0.1.0/24"),
    ("10.0.0.0/8", "10.0.0.0/16"),
    ("10.0.1.0/24", "10.0.0.0/16"),
    ("10.0.0.0/8", "10.0.0.0/8"),
]


class TestConcurrentOperationIsolation:
    """Two Operations over intersecting flow space never run together."""

    @given(
        first=st.sampled_from(["move", "copy", "share"]),
        second=st.sampled_from(["move", "copy", "share"]),
        prefixes=st.sampled_from(_OVERLAPPING),
        gap_ms=st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15)
    def test_never_both_in_flight(self, first, second, prefixes, gap_ms,
                                  seed):
        def op(kind, prefix, at_ms):
            return OpSpec(
                kind=kind, at_ms=at_ms, prefix=prefix,
                guarantee="strong" if kind == "share" else "lf",
                scope="multi" if kind in ("copy", "share") else "per",
            )

        spec = ScheduleSpec(
            nf="monitor", seed=seed, n_flows=6, data_packets=3,
            ops=[op(first, prefixes[0], 5.0),
                 op(second, prefixes[1], 5.0 + gap_ms)],
        )
        result = run_schedule(spec, keep_deployment=True)
        isolation = [f for f in result.property_failures
                     if f.prop == "isolation"]
        assert not isolation, "\n".join(f.render() for f in isolation)
        # No silent drop by admission: each op either launched (emitting
        # op.start) or was explicitly aborted as never-launched (a share
        # still queued behind a conflicting session at schedule end).
        started = [e for _t, kind, e in result.entries
                   if kind == "record" and e.get("name") == "op.start"]
        never_launched = sum(
            1 for r in result.reports
            if "never launched" in str(getattr(r, "aborted", ""))
        )
        assert started
        assert len(started) + never_launched == 2

    def test_second_op_is_deferred_by_admission(self):
        """Ground truth for the trace property: admission queued it."""
        spec = ScheduleSpec(
            nf="monitor", seed=11, n_flows=6, data_packets=3,
            ops=[
                OpSpec(kind="move", at_ms=5.0, prefix="10.0.0.0/8",
                       guarantee="lf"),
                OpSpec(kind="move", at_ms=5.1, prefix="10.0.1.0/24",
                       src="inst2", dst="inst1", guarantee="lf"),
            ],
        )
        result = run_schedule(spec, keep_deployment=True)
        dep = result.deployment
        assert dep.controller.operations_queued_for_conflict >= 1
        assert result.ok, result.summary()


# ------------------------------------------------------------------ corpus


class TestCorpusReplay:
    def test_corpus_is_populated(self):
        names = {entry.name for entry in load_corpus(CORPUS_DIR)}
        assert {"splitmerge-loss", "ng-under-load",
                "abort-racing-put"} <= names

    @pytest.mark.parametrize(
        "entry", load_corpus(CORPUS_DIR), ids=lambda e: e.name
    )
    def test_replay_entry(self, entry):
        outcome = replay_entry(entry)
        assert outcome.ok, "%s: %s" % (entry.name, outcome.problems)

    def test_abort_racing_put_interleaving(self):
        """The acceptance interleaving: a burst racing an aborted move."""
        entry = next(e for e in load_corpus(CORPUS_DIR)
                     if e.name == "abort-racing-put")
        assert entry.expect == "clean"
        move = entry.spec.ops[0]
        assert move.kind == "move" and move.abort_at_ms is not None
        burst = entry.spec.bursts[0]
        # The burst lands after the move starts, inside its window.
        assert burst.at_ms > move.at_ms
        result = run_schedule(entry.spec)
        assert result.clean, result.summary()
        assert any(getattr(r, "aborted", None) for r in result.reports)


# --------------------------------------------------------------------- CLI


class TestConformCli:
    def test_matrix_subset_exit_codes(self, capsys):
        assert cli_main(["conform", "--nf", "monitor",
                         "--guarantee", "lf"]) == 0
        out = capsys.readouterr().out
        assert "unexpected" not in out.lower() or "0 unexpected" in out
        assert cli_main(["conform", "--nf", "no-such-nf"]) == 2

    def test_replay_corpus(self, capsys):
        assert cli_main(["conform", "--replay", CORPUS_DIR]) == 0
        assert "ok" in capsys.readouterr().out

    def test_replay_empty_dir(self, tmp_path):
        assert cli_main(["conform", "--replay", str(tmp_path)]) == 2

    def test_single_schedule_file(self, tmp_path, capsys):
        spec = ScheduleSpec(
            nf="monitor", seed=11, n_flows=6, data_packets=3,
            ops=[OpSpec(kind="move", at_ms=5.0, guarantee="lf")],
        )
        path = str(tmp_path / "one.schedule.json")
        with open(path, "w") as handle:
            handle.write(spec.to_json())
        assert cli_main(["conform", path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_schedule_file_fails(self, tmp_path):
        spec = ScheduleSpec(
            nf="monitor", seed=11, n_flows=8, data_packets=4,
            ops=[OpSpec(kind="move", at_ms=4.0, guarantee="lf",
                        abort_at_ms=None)],
        )
        # Corrupt the expectation: claim a splitmerge run is clean by
        # feeding its schedule raw — the CLI must exit 1 on DIRTY... but
        # a splitmerge schedule is expected_dirty, so use the wrapped
        # corpus format with nothing special: instead verify exit 0 for
        # expected-dirty (ok) and that the verdict is printed.
        spec.ops[0] = OpSpec(kind="splitmerge", at_ms=4.0)
        path = str(tmp_path / "sm.schedule.json")
        with open(path, "w") as handle:
            json.dump({"schedule": spec.to_dict()}, handle)
        assert cli_main(["conform", path]) == 0
