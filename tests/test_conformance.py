"""Every bundled NF must pass the southbound conformance battery."""

import pytest

from repro.flowspace import FiveTuple
from repro.net.packet import Packet
from repro.nf import Scope
from repro.nf.conformance import check_nf_conformance
from repro.nfs.dummy import DummyNF
from repro.nfs.ids import IntrusionDetector
from repro.nfs.lb import LoadBalancer
from repro.nfs.monitor import AssetMonitor
from repro.nfs.nat import NetworkAddressTranslator
from repro.nfs.proxy import CachingProxy, request_payload
from repro.nfs.redup import REDecoder, REEncoder


def http_traffic():
    from repro.traffic import http_exchange

    packets = []
    for index in range(5):
        flow = http_exchange(
            "10.0.1.%d" % (index + 1), 20000 + index, "203.0.113.5",
            reply_body="B" * 400, close=False,
        )
        packets.extend(b.build(0.0) for b in flow.packets)
    return packets


def proxy_traffic():
    packets = []
    for index in range(5):
        flow = FiveTuple("10.0.1.%d" % (index + 1), 20000 + index,
                         "203.0.113.5", 80)
        packets.append(Packet(flow, tcp_flags=("ACK", "PSH"),
                              payload=request_payload("/obj/%d" % index,
                                                      200_000)))
    return packets


def payload_traffic():
    packets = []
    for index in range(6):
        flow = FiveTuple("10.0.1.%d" % (index + 1), 20000 + index,
                         "203.0.113.5", 9000)
        packets.append(Packet(flow, payload="content-%d " % (index % 2) * 8))
    return packets


CASES = [
    ("AssetMonitor", lambda sim, name: AssetMonitor(sim, name), None),
    ("IntrusionDetector",
     lambda sim, name: IntrusionDetector(sim, name), http_traffic),
    ("NAT", lambda sim, name: NetworkAddressTranslator(sim, name), None),
    ("CachingProxy", lambda sim, name: CachingProxy(sim, name),
     proxy_traffic),
    ("LoadBalancer", lambda sim, name: LoadBalancer(sim, name), None),
    ("REEncoder", lambda sim, name: REEncoder(sim, name), payload_traffic),
    ("REDecoder", lambda sim, name: REDecoder(sim, name), payload_traffic),
    ("DummyNF", lambda sim, name: _preloaded_dummy(sim, name), None),
]


def _preloaded_dummy(sim, name):
    dummy = DummyNF(sim, name)
    dummy.preload(5)
    return dummy


@pytest.mark.parametrize(
    "label,factory,traffic", CASES, ids=[c[0] for c in CASES]
)
def test_nf_conformance(label, factory, traffic):
    report = check_nf_conformance(
        factory, traffic=None if traffic is None else traffic()
    )
    assert report.ok, "%s: %s" % (label, report.failures)
    assert report.checks_run > 0
    # Every NF must expose at least one scope with state.
    assert any(count > 0 for count in report.chunks_seen.values()), (
        "%s exported nothing under conformance traffic" % label
    )
    # The at-most-once replay check ran wherever state was exported.
    assert report.replay_scopes, (
        "%s never exercised the rpc replay path" % label
    )


def test_replay_check_catches_dedup_violation():
    """An NF that re-runs a replayed put must fail the battery."""

    class ReplayBrokenMonitor(AssetMonitor):
        def rpc_deliver(self, request_id, run):
            self.rpcs_delivered += 1
            run()  # ignores the request id: every retry re-applies

    report = check_nf_conformance(
        lambda sim, name: ReplayBrokenMonitor(sim, name)
    )
    assert not report.ok
    assert any("dedup" in f or "replay" in f for f in report.failures), (
        report.failures
    )
