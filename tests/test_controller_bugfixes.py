"""Regression tests for the single-controller bugs fixed alongside sharding.

Three bugs, each pinned here:

1. ``_event_reorder`` was never reset when an NF crash-stopped or was
   replaced, so a restarted instance's sequenced events (seq starting
   back at 1) were all silently dropped as duplicates.
2. Deferred operations could starve: a waiting ``DeferredOperation``
   was not in the admission table, so later operations overlapping the
   *deferred* filter (but not the in-flight one) leapfrogged it.
3. ``instance_at_port`` linearly scanned ``nf_ports`` per packet-in,
   and ``register_nf`` silently let two NFs claim the same port.

Plus the abort-while-deferred race: an abort landing in the same sim
timestamp as the last conflict's ``done`` must not launch the operation
after its ``done`` already triggered with the deferred-abort report.

And the chain-level twin of that race: a ``ChainOperation.abort``
landing in the same timestamp as the in-flight hop move's completion
must treat that hop as *completed* (one reverse move during rollback),
never forward a stale cancellation into a hop whose release barrier has
already drained.
"""

import pytest

from repro.controller.controller import OpenNFController
from repro.faults import FaultPlan
from repro.flowspace import Filter, FiveTuple
from repro.harness import build_multi_instance_deployment, check_loss_free
from repro.nf.events import EventAction, PacketEvent
from repro.nfs.dummy import DummyNF
from repro.sim import Simulator
from tests.conftest import make_packet


def feed(dep, nf, count=10, net="10.0.1"):
    for index in range(count):
        flow = FiveTuple("%s.%d" % (net, index + 1), 30000 + index,
                         "203.0.113.5", 80)
        nf.receive(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


def _sequenced_event(sim, nf_name, seq, port=40000):
    flow = FiveTuple("10.0.1.9", port, "203.0.113.5", 80)
    event = PacketEvent(nf_name, make_packet(flow), EventAction.PROCESS,
                        sim.now)
    event.seq = seq
    return event


class TestEventReorderReset:
    def _reliable_controller(self):
        sim = Simulator()
        # An empty fault plan: no injected faults, but the reliable
        # (sequenced/acked) event channel is on.
        ctrl = OpenNFController(sim, faults=FaultPlan(seed=1))
        return sim, ctrl

    def test_replacement_instance_events_not_dropped_as_duplicates(self):
        sim, ctrl = self._reliable_controller()
        received = []
        ctrl.default_event_handler = received.append
        first = DummyNF(sim, "inst1")
        ctrl.register_nf(first, port="p1")
        ctrl.handle_nf_event(_sequenced_event(sim, "inst1", 1))
        ctrl.handle_nf_event(_sequenced_event(sim, "inst1", 2))
        sim.run()
        assert len(received) == 2

        first.fail("power loss")
        # A replacement instance registered under the same name starts
        # its event sequence from 1 again. Before the fix the stale
        # reorder state dropped every one of its events as a duplicate.
        replacement = DummyNF(sim, "inst1")
        ctrl.register_nf(replacement, port="p1")
        ctrl.handle_nf_event(_sequenced_event(sim, "inst1", 1))
        sim.run()
        assert len(received) == 3
        assert ctrl.events_duplicate_dropped == 0

    def test_crash_releases_buffered_out_of_order_events(self):
        sim, ctrl = self._reliable_controller()
        received = []
        ctrl.default_event_handler = received.append
        nf = DummyNF(sim, "inst1")
        ctrl.register_nf(nf, port="p1")
        ctrl.handle_nf_event(_sequenced_event(sim, "inst1", 1))
        # seq 3 arrives with seq 2 missing: buffered, not delivered.
        ctrl.handle_nf_event(_sequenced_event(sim, "inst1", 3))
        sim.run(until=5.0)
        assert len(received) == 1
        # The instance dies; seq 2 will never arrive. The buffered
        # seq-3 event was genuinely raised and must not die with the
        # reorder buffer.
        nf.fail("crash")
        sim.run()
        assert len(received) == 2
        assert ctrl._event_reorder == {}

    def test_deregister_clears_sequencing_state(self):
        sim, ctrl = self._reliable_controller()
        nf = DummyNF(sim, "inst1")
        ctrl.register_nf(nf, port="p1")
        ctrl.handle_nf_event(_sequenced_event(sim, "inst1", 1))
        sim.run()
        assert "inst1" in ctrl._event_reorder
        ctrl.deregister_nf("inst1")
        assert "inst1" not in ctrl._event_reorder
        assert ctrl.instance_at_port("p1") is None
        assert "inst1" not in ctrl.clients


class TestPortMap:
    def test_register_rejects_duplicate_port(self):
        sim = Simulator()
        ctrl = OpenNFController(sim)
        ctrl.register_nf(DummyNF(sim, "inst1"), port="p1")
        with pytest.raises(ValueError, match="already claimed"):
            ctrl.register_nf(DummyNF(sim, "inst2"), port="p1")
        # The first registration still holds the port.
        assert ctrl.instance_at_port("p1") == "inst1"

    def test_instance_at_port_reverse_map(self):
        sim = Simulator()
        ctrl = OpenNFController(sim)
        ctrl.register_nf(DummyNF(sim, "inst1"), port="p1")
        ctrl.register_nf(DummyNF(sim, "inst2"), port="p2")
        assert ctrl.instance_at_port("p1") == "inst1"
        assert ctrl.instance_at_port("p2") == "inst2"
        assert ctrl.instance_at_port("p9") is None

    def test_same_name_reregistration_moves_port(self):
        sim = Simulator()
        ctrl = OpenNFController(sim)
        ctrl.register_nf(DummyNF(sim, "inst1"), port="p1")
        ctrl.register_nf(DummyNF(sim, "inst1"), port="p2")
        assert ctrl.instance_at_port("p1") is None
        assert ctrl.instance_at_port("p2") == "inst1"
        # The vacated port is claimable again.
        ctrl.register_nf(DummyNF(sim, "inst3"), port="p1")
        assert ctrl.instance_at_port("p1") == "inst3"


class TestDeferralFifo:
    def test_deferred_operation_cannot_be_leapfrogged(self):
        """The three-operation starvation pin.

        A (narrow, in flight) blocks B (broad, deferred). C intersects
        only B's filter, not A's — before the fix C started immediately
        and B could starve behind an endless stream of such Cs. Now B's
        reservation makes admission FIFO: C waits for B.
        """
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 5, net="10.0.1")
        feed(dep, a, 5, net="10.0.2")
        narrow_a = Filter({"nw_src": "10.0.1.0/24"}, symmetric=True)
        broad_b = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        narrow_c = Filter({"nw_src": "10.0.2.0/24"}, symmetric=True)
        op_a = dep.controller.move("inst1", "inst2", narrow_a,
                                   guarantee="lf")
        op_b = dep.controller.move("inst1", "inst3", broad_b,
                                   guarantee="lf")
        op_c = dep.controller.move("inst3", "inst2", narrow_c,
                                   guarantee="lf")
        # C intersects no LIVE operation, only deferred B — it must
        # still queue (this is exactly the leapfrog).
        assert dep.controller.operations_queued_for_conflict == 2
        dep.sim.run()
        assert all(op.done.triggered for op in (op_a, op_b, op_c))
        assert op_b.report.started_at >= op_a.done.value.finished_at
        assert op_c.report.started_at >= op_b.done.value.finished_at
        ok, detail = check_loss_free(dep.switch, [a, b, c])
        assert ok, detail
        # Everything drained out of the admission table.
        assert dep.controller._admission == {}

    def test_fifo_chain_preserves_submission_order(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 6)
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        ops = [
            dep.controller.move("inst1", "inst2", flt, guarantee="lf"),
            dep.controller.move("inst2", "inst3", flt, guarantee="lf"),
            dep.controller.move("inst3", "inst1", flt, guarantee="lf"),
        ]
        dep.sim.run()
        starts = [op.report.started_at for op in ops]
        assert starts == sorted(starts)
        assert a.conn_count() == 6


class TestAbortWhileDeferred:
    def test_abort_at_last_conflict_done_timestamp_never_launches(self):
        """Abort racing the conflict's done in the same sim timestamp.

        The conflict's done callback chain (a) decrements the deferred
        op's wait count, scheduling its launch at +0 ms, and (b) runs
        our abort. The launch callback then finds ``done`` already
        triggered and must NOT start the operation.
        """
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 4)
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        first = dep.controller.move("inst1", "inst2", flt, guarantee="lf")
        second = dep.controller.move("inst2", "inst3", flt, guarantee="lf")
        first.done.add_callback(
            lambda _evt: second.abort("raced the done callback")
        )
        dep.sim.run()
        assert second.done.triggered
        assert second.operation is None  # never launched
        assert second.report is not None
        assert ("aborted while deferred: raced the done callback"
                == second.report.aborted)
        # The aborted reservation is released; the table is empty.
        assert dep.controller._admission == {}
        # And the state actually moved only once (first op).
        assert b.conn_count() == 4
        assert c.conn_count() == 0


class TestChainAbortRacingHopCompletion:
    def test_abort_at_hop_done_timestamp_rolls_back_exactly_once(self):
        """Chain abort racing a hop's release barrier in one timestamp.

        The abort fires from the in-flight hop move's own ``done``
        callback — the exact instant the hop completes. The guard on
        ``ChainOperation.abort`` must see ``done.triggered`` and NOT
        forward the cancellation into the hop (its buffered packets are
        released, its state is live at the destination); instead the
        chain's next checkpoint aborts the composite and the completed
        hop is rolled back exactly once by one reverse move.
        """
        from repro.harness import LOCAL_NET_FILTER
        from repro.nfs.monitor import AssetMonitor
        from repro.traffic.replay import TraceReplayer
        from repro.traffic.traces import (
            TraceConfig,
            build_university_cloud_trace,
        )
        from repro.harness.deployment import Deployment

        dep = Deployment()
        nfs = {}
        hops = [("a", ("a1", "a2")), ("b", ("b1", "b2"))]
        for _, names in hops:
            for name in names:
                nf = AssetMonitor(dep.sim, name)
                dep.add_nf(nf)
                nfs[name] = nf
        chain = dep.chain("pair", hops, flt=LOCAL_NET_FILTER)
        trace = build_university_cloud_trace(TraceConfig(
            seed=5, n_flows=30, data_packets=8,
        ))
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets,
                                 rate_pps=2500.0)
        replayer.start()
        holder = {}

        def kickoff():
            holder["op"] = dep.controller.move_chain(
                chain, LOCAL_NET_FILTER, {"a": "a2", "b": "b2"},
                guarantee="lf",
            )

        def attach():
            op = holder["op"]
            assert op._current is not None, "no hop move in flight"
            holder["hop"] = op._current
            op._current.done.add_callback(
                lambda _evt: op.abort("raced hop completion")
            )

        kick_at = replayer.duration_ms / 2.0
        dep.sim.schedule(kick_at, kickoff)
        dep.sim.schedule(kick_at + 1.0, attach)
        dep.sim.run()

        op = holder["op"]
        report = op.done.value
        assert report.aborted == "aborted: raced hop completion"
        # The racing hop (the tail, hop "b") completed cleanly — its own
        # report carries no abort — and was rolled back exactly once.
        assert holder["hop"].report.aborted is None
        assert [r.src for r in op.hop_reports] == ["b1"]
        assert report.notes == ["rolled back hop 'b'"]
        # The head hop never launched; every active is back at the
        # original instance and the admission table drained.
        assert [hop.active for hop in chain.hops] == ["a1", "b1"]
        assert dep.controller._admission == {}
