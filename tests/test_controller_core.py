"""Tests for controller dispatch, the switch client, and the harness."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import (
    Deployment,
    build_multi_instance_deployment,
    check_loss_free,
    check_order_preserving,
    merged_processing_order,
    switch_forwarding_order,
)
from repro.metrics import LatencyReport, added_latency
from repro.net.flowtable import HIGH_PRIORITY, MID_PRIORITY
from repro.nf import EventAction
from repro.nfs.monitor import AssetMonitor
from tests.conftest import make_packet


class TestControllerDispatch:
    def test_event_interest_routing_by_nf_and_filter(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        seen = []
        dep.controller.add_event_interest(
            "inst1", Filter({"tp_dst": 80}), lambda e: seen.append("http")
        )
        dep.controller.add_event_interest(
            "inst1", None, lambda e: seen.append("any")
        )
        dep.controller.client("inst1").enable_events(
            Filter.wildcard(), EventAction.PROCESS
        )
        dep.sim.run()
        a.receive(make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80)))
        a.receive(make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 443)))
        dep.sim.run()
        # Newest matching interest wins; http packet hits "any" (newest)
        # too, so both events land on "any".
        assert seen == ["any", "any"]

    def test_interest_removal(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        seen = []
        handle = dep.controller.add_event_interest(None, None, seen.append)
        dep.controller.remove_interest(handle)
        dep.controller.client("inst1").enable_events(
            Filter.wildcard(), EventAction.PROCESS
        )
        dep.sim.run()
        a.receive(make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80)))
        dep.sim.run()
        assert seen == []

    def test_default_event_handler_catches_unclaimed(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        fallback = []
        dep.controller.default_event_handler = fallback.append
        dep.controller.client("inst1").enable_events(
            Filter.wildcard(), EventAction.PROCESS
        )
        dep.sim.run()
        a.receive(make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80)))
        dep.sim.run()
        assert len(fallback) == 1

    def test_client_resolution(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        client = dep.controller.client("inst1")
        assert dep.controller.client(a) is client
        assert dep.controller.client(client) is client

    def test_port_mapping(self):
        dep, _ = build_multi_instance_deployment(2)
        assert dep.controller.port_of("inst1") == "inst1"
        assert dep.controller.instance_at_port("inst2") == "inst2"
        assert dep.controller.instance_at_port("nope") is None

    def test_msg_proc_cost_delays_dispatch(self):
        dep = Deployment(msg_proc_ms=5.0)
        nf = AssetMonitor(dep.sim, "m")
        dep.add_nf(nf)
        dep.set_default_route("m")
        times = []
        dep.controller.add_event_interest(
            None, None, lambda e: times.append(dep.sim.now - e.raised_at)
        )
        dep.controller.client("m").enable_events(
            Filter.wildcard(), EventAction.PROCESS
        )
        dep.sim.run()
        nf.receive(make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80)))
        dep.sim.run()
        assert times and times[0] >= 5.0


class TestSwitchClient:
    def test_install_event_fires_when_rule_active(self):
        dep, _ = build_multi_instance_deployment(1)
        done = dep.controller.switch_client.install(
            Filter.wildcard(), ["inst1"], MID_PRIORITY
        )
        dep.sim.run()
        assert done.triggered
        assert dep.switch.table.find(Filter.wildcard(), MID_PRIORITY)

    def test_remove_event(self):
        dep, _ = build_multi_instance_deployment(1)
        dep.controller.switch_client.install(
            Filter.wildcard(), ["inst1"], MID_PRIORITY
        )
        dep.sim.run()
        done = dep.controller.switch_client.remove(Filter.wildcard(),
                                                   MID_PRIORITY)
        dep.sim.run()
        assert done.triggered
        assert dep.switch.table.find(Filter.wildcard(), MID_PRIORITY) is None

    def test_read_counters(self):
        dep, (a,) = build_multi_instance_deployment(1)
        packet = make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80))
        dep.inject(packet)
        dep.sim.run()
        done = dep.controller.switch_client.read_counters(Filter.wildcard())
        dep.sim.run()
        packets, size = done.value
        assert packets == 1 and size == packet.size_bytes

    def test_read_entries(self):
        dep, _ = build_multi_instance_deployment(2)
        done = dep.controller.switch_client.read_entries(
            Filter({"nw_src": "10.0.0.0/8"})
        )
        dep.sim.run()
        entries = done.value
        assert len(entries) == 1  # the wildcard default route overlaps
        flt, priority, actions = entries[0]
        assert actions == ("inst1",)

    def test_packet_out_pays_channel_and_rate_cost(self):
        dep, (a,) = build_multi_instance_deployment(1)
        packet = make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80))
        dep.controller.switch_client.packet_out(packet, "inst1")
        dep.sim.run()
        assert a.packets_processed == 1
        done_time = a.processing_log[0][0]
        assert done_time > dep.switch.packet_out_interval_ms


class TestPropertyCheckers:
    def test_forwarding_order_ignores_controller_copies(self):
        dep, (a,) = build_multi_instance_deployment(1)
        dep.switch.table.remove(Filter.wildcard())
        dep.switch.table.install(Filter.wildcard(), MID_PRIORITY,
                                 ["inst1", "controller"], 0.0)
        packet = make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80))
        dep.inject(packet)
        dep.sim.run()
        order = switch_forwarding_order(dep.switch, ["inst1"])
        assert order == [packet.uid]

    def test_loss_free_checker_detects_missing(self):
        dep, (a,) = build_multi_instance_deployment(1)
        packet = make_packet(FiveTuple("10.0.0.1", 1, "10.0.0.2", 80))
        a.sb_enable_events(Filter.wildcard(), EventAction.DROP, silent=True)
        dep.inject(packet)
        dep.sim.run()
        ok, detail = check_loss_free(dep.switch, [a])
        assert not ok
        assert str(packet.uid) in detail

    def test_order_checker_detects_inversion(self):
        dep, (a,) = build_multi_instance_deployment(1)
        flow = FiveTuple("10.0.0.1", 1, "10.0.0.2", 80)
        first, second = make_packet(flow), make_packet(flow)
        dep.inject(first)
        dep.inject(second)
        dep.sim.run()
        # Forge an inversion in the processing log.
        a.processing_log.reverse()
        a.processing_log = [(t, uid) for (t, uid) in
                            zip([1.0, 2.0], [u for (_t, u) in a.processing_log])]
        ok, detail = check_order_preserving(dep.switch, [a], [first, second])
        assert not ok

    def test_merged_processing_order(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        a.processing_log = [(1.0, 10), (3.0, 30)]
        b.processing_log = [(2.0, 20)]
        assert merged_processing_order([a, b]) == [10, 20, 30]


class TestLatencyMetrics:
    def test_added_latency_relative_to_baseline(self):
        class FakeNF:
            processing_log = [(10.0, 1), (11.0, 2), (30.0, 3)]

        class FakePacket:
            def __init__(self, uid, created_at):
                self.uid = uid
                self.created_at = created_at

        packets = [FakePacket(1, 9.0), FakePacket(2, 10.0), FakePacket(3, 10.0)]
        report = added_latency([FakeNF()], packets, affected_uids={3})
        assert report.baseline_ms == 1.0
        assert report.affected_count == 1
        assert report.samples == [19.0]
        assert report.average_added_ms == 19.0
        assert report.max_added_ms == 19.0

    def test_empty_report(self):
        report = LatencyReport()
        assert report.average_added_ms == 0.0
        assert report.max_added_ms == 0.0
        assert report.percentile(0.9) == 0.0

    def test_percentile(self):
        report = LatencyReport(samples=[1.0, 2.0, 3.0, 4.0, 5.0])
        assert report.percentile(0.0) == 1.0
        assert report.percentile(0.99) == 5.0


class TestDeploymentHelpers:
    def test_processed_uid_counts(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        flow = FiveTuple("10.0.0.1", 1, "10.0.0.2", 80)
        packet = make_packet(flow)
        dep.inject(packet)
        dep.sim.run()
        counts = dep.processed_uid_counts()
        assert counts == {packet.uid: 1}
        assert dep.processing_time_of(packet.uid) is not None
        assert dep.processing_time_of(99999) is None

    def test_processed_events_sorted(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        a.processing_log = [(2.0, 20)]
        b.processing_log = [(1.0, 10)]
        events = dep.processed_events()
        assert [uid for (_t, uid, _n) in events] == [10, 20]


class TestReportToDict:
    def test_roundtrips_to_json(self):
        import json

        from repro.controller.reports import OperationReport

        report = OperationReport(kind="move", guarantee="loss-free",
                                 src="a", dst="b", started_at=1.0,
                                 finished_at=5.0)
        report.add_chunk("perflow", 100, 60)
        report.mark_phase("rerouted", 4.0)
        dumped = json.loads(json.dumps(report.to_dict()))
        assert dumped["duration_ms"] == 4.0
        assert dumped["wire_bytes_moved"] == {"perflow": 60}
        assert dumped["phases"]["rerouted"] == 3.0
        assert dumped["aborted"] is None
