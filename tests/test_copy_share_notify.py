"""Tests for copy, share, and notify (§5.2)."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import build_multi_instance_deployment
from repro.nf import EventAction, Scope
from repro.nfs.monitor import AssetMonitor
from repro.traffic import TraceConfig, TraceReplayer, build_university_cloud_trace
from tests.conftest import make_packet


def feed(dep, nf, count=10, client="10.0.1.2"):
    for i in range(count):
        flow = FiveTuple(client, 30000 + i, "203.0.113.5", 80)
        nf.receive(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


class TestCopy:
    def test_copy_clones_without_deleting(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 5)
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per")
        dep.sim.run()
        assert op.done.triggered
        assert a.conn_count() == 5  # source keeps its state
        assert b.conn_count() == 5

    def test_copy_multiflow_merges(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 3)
        feed(dep, b, 3, client="10.0.9.9")
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "multi")
        dep.sim.run()
        # inst2 has its own assets plus inst1's.
        assert b.asset_for("10.0.1.2") is not None
        assert b.asset_for("10.0.9.9") is not None

    def test_copy_no_forwarding_change(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 2)
        table_size = len(dep.switch.table)
        dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per")
        dep.sim.run()
        assert len(dep.switch.table) == table_size

    def test_copy_report_accounts_bytes(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 4)
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(),
                                 "per+multi")
        dep.sim.run()
        report = op.done.value
        assert report.total_chunks > 4  # per-flow + assets
        assert report.total_bytes > 0

    def test_repeated_copy_is_idempotent_for_assets(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 3)
        for _ in range(3):
            op = dep.controller.copy("inst1", "inst2", Filter.wildcard(),
                                     "multi")
            dep.sim.run()
        asset = b.asset_for("10.0.1.2")
        assert asset.connections == a.asset_for("10.0.1.2").connections

    def test_sequential_copy_matches_parallel_result(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 4)
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per",
                                 parallel=False)
        dep.sim.run()
        assert b.conn_count() == 4


class TestNotify:
    def test_callback_invoked_for_matching_packets(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        seen = []
        dep.controller.notify(
            Filter({"tcp_flags": "SYN"}), "inst1", True, seen.append
        )
        dep.sim.run()
        feed(dep, a, 3)
        assert len(seen) == 3
        assert all(e.action_taken is EventAction.PROCESS for e in seen)

    def test_packets_still_processed(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        dep.controller.notify(Filter.wildcard(), "inst1", True, lambda e: None)
        dep.sim.run()
        feed(dep, a, 3)
        assert a.packets_processed == 3

    def test_disable_stops_callbacks(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        seen = []
        flt = Filter({"tcp_flags": "SYN"})
        handle = dep.controller.notify(flt, "inst1", True, seen.append)
        dep.sim.run()
        feed(dep, a, 1)
        dep.controller.remove_interest(handle)
        dep.controller.notify(flt, "inst1", False)
        dep.sim.run()
        feed(dep, a, 2)
        assert len(seen) == 1

    def test_enable_requires_callback(self):
        dep, _ = build_multi_instance_deployment(2)
        with pytest.raises(ValueError):
            dep.controller.notify(Filter.wildcard(), "inst1", True)


class TestShare:
    def _deployment_with_split_traffic(self, n_flows=24):
        dep, (a, b) = build_multi_instance_deployment(2)
        # Split flows across the two instances by client IP parity.
        dep.switch.table.remove(Filter.wildcard())
        dep.set_default_route("inst1")
        dep.switch.table.install(
            Filter({"nw_src": "10.0.2.0/24"}, symmetric=True),
            500, ["inst2"], 0.0,
        )
        return dep, a, b

    def test_validation(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        with pytest.raises(ValueError):
            dep.controller.share(["inst1"], Filter.wildcard())
        with pytest.raises(ValueError):
            dep.controller.share(["inst1", "inst2"], Filter.wildcard(),
                                 consistency="weak")
        with pytest.raises(ValueError):
            dep.controller.share(["inst1", "inst2"], Filter.wildcard(),
                                 group_by="subnet")

    def test_initial_sync_merges_state(self):
        dep, a, b = self._deployment_with_split_traffic()
        feed(dep, a, 3, client="10.0.1.5")
        feed(dep, b, 3, client="10.0.2.5")
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi"
        )
        dep.sim.run()
        assert share.started.triggered
        assert a.asset_for("10.0.2.5") is not None
        assert b.asset_for("10.0.1.5") is not None
        share.stop()
        dep.sim.run()

    def test_strong_share_serializes_and_syncs(self):
        dep, a, b = self._deployment_with_split_traffic()
        share = dep.controller.share(
            ["inst1", "inst2"],
            Filter.wildcard(),
            scope="multi",
            consistency="strong",
            group_by="host",
        )
        dep.sim.run()
        # Two hosts' flows, one to each instance.
        flow_a = FiveTuple("10.0.1.5", 1111, "203.0.113.9", 80)
        flow_b = FiveTuple("10.0.2.5", 2222, "203.0.113.9", 80)
        dep.inject(make_packet(flow_a, flags=("SYN",)))
        dep.inject(make_packet(flow_b, flags=("SYN",)))
        dep.sim.run()
        assert share.packets_serialized == 2
        # Updates made at inst1 are reflected at inst2 and vice versa.
        assert b.asset_for("10.0.1.5") is not None
        assert a.asset_for("10.0.2.5") is not None
        assert share.average_added_latency_ms() > 0
        share.stop()
        dep.sim.run()

    def test_strong_share_per_packet_latency_cost(self):
        dep, a, b = self._deployment_with_split_traffic()
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi",
            consistency="strong",
        )
        dep.sim.run()
        flow = FiveTuple("10.0.1.5", 1111, "203.0.113.9", 80)
        for i in range(5):
            dep.inject(make_packet(flow, flags=("ACK",), seq=i))
        dep.sim.run()
        assert share.packets_serialized == 5
        # Serialized processing is an order of magnitude above normal.
        assert share.average_added_latency_ms() > 5.0
        share.stop()
        dep.sim.run()

    def test_strict_share_redirects_rules(self):
        dep, a, b = self._deployment_with_split_traffic()
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi",
            consistency="strict",
        )
        dep.sim.run()
        flow = FiveTuple("10.0.1.5", 1111, "203.0.113.9", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        # Processed at its original owner (inst1) despite redirection.
        assert a.packets_processed == 1
        assert share.packets_serialized == 1
        share.stop()
        dep.sim.run()
        # Rules restored after stop: traffic flows directly again.
        dep.inject(make_packet(flow, flags=("ACK",)))
        dep.sim.run()
        assert a.packets_processed == 2

    def test_strict_share_preserves_switch_order(self):
        dep, a, b = self._deployment_with_split_traffic()
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi",
            consistency="strict", group_by="all",
        )
        dep.sim.run()
        packets = []
        for i in range(6):
            client = "10.0.1.5" if i % 2 == 0 else "10.0.2.5"
            flow = FiveTuple(client, 3000 + i, "203.0.113.9", 80)
            packet = make_packet(flow, flags=("SYN",))
            packets.append(packet)
            dep.sim.schedule(float(i), lambda p=packet: dep.inject(p))
        dep.sim.run()
        merged = sorted(
            [(t, uid) for nf in (a, b) for (t, uid) in nf.processing_log]
        )
        assert [uid for (_t, uid) in merged] == [p.uid for p in packets]
        share.stop()
        dep.sim.run()

    def test_share_latency_flat_with_more_instances(self):
        def run_with(n):
            dep, instances = build_multi_instance_deployment(n)
            share = dep.controller.share(
                ["inst%d" % (i + 1) for i in range(n)],
                Filter.wildcard(), scope="multi", consistency="strong",
            )
            dep.sim.run()
            flow = FiveTuple("10.0.1.5", 1111, "203.0.113.9", 80)
            for i in range(5):
                dep.inject(make_packet(flow, flags=("ACK",), seq=i))
            dep.sim.run()
            value = share.average_added_latency_ms()
            share.stop()
            dep.sim.run()
            return value

        two = run_with(2)
        six = run_with(6)
        # Puts fan out in parallel: more instances must not grow latency
        # meaningfully (§8.1.1 observed flat latency up to 6 instances).
        assert six < two * 1.25


@pytest.mark.obs
class TestShareUpdateSpans:
    """share(strong) serialization, asserted on the spans themselves."""

    def test_strong_share_updates_do_not_overlap(self):
        dep, (a, b) = build_multi_instance_deployment(
            2, deployment_kwargs={"observe": True}
        )
        dep.switch.table.remove(Filter.wildcard())
        dep.set_default_route("inst1")
        dep.switch.table.install(
            Filter({"nw_src": "10.0.2.0/24"}, symmetric=True),
            500, ["inst2"], 0.0,
        )
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi",
            consistency="strong", group_by="all",
        )
        dep.sim.run()
        for index in range(4):
            flow = FiveTuple(
                "10.0.%d.5" % (1 + index % 2), 1000 + index,
                "203.0.113.9", 80,
            )
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        share.stop()
        dep.sim.run()

        exporter = dep.obs.exporter
        updates = exporter.find("share.update")
        assert len(updates) == share.packets_serialized
        assert len(updates) >= 4
        root = exporter.find("share")[0]
        assert all(u.parent_id == root.span_id for u in updates)
        assert all(u.attrs["group"] for u in updates)
        # One global group: the update regions must be strictly serial.
        for earlier, later in zip(updates, updates[1:]):
            assert later.start >= earlier.end
        # The initial sync phase closed before any packet was serialized.
        sync = exporter.find("share.sync")[0]
        assert sync.end <= updates[0].start
