"""Differential tests pinning the indexed fast paths to the linear oracles.

The index structures (FlowTable buckets, BaseNF event-rule index,
FlowKeyedStore) are always maintained; the ``indexed`` /
``use_indexed_rules`` / ``use_indexed_state`` flags only switch the
query strategy. These tests drive randomized workloads — exact,
symmetric, reversed, prefix, port-only, and wildcard filters, with
interleaved removals — through both strategies and require bit-identical
results: same winning entries, same forward logs, same event actions,
same state-key lists in the same order.
"""

import random

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.flowspace.filter import packet_match_keys
from repro.net import FlowTable, Link, Packet, Switch
from repro.net.packet import reset_uid_counter
from repro.nf.events import EventAction
from repro.nfs.dummy import DummyNF
from repro.sim import Simulator

IPS = ["10.0.%d.%d" % (i // 200, 1 + i % 200) for i in range(2000)] + \
    ["203.0.113.%d" % i for i in range(1, 4)]
PORTS = [80, 443, 1234, 5555]


def random_five_tuple(rng):
    src, dst = rng.sample(IPS, 2)
    return FiveTuple(src, rng.choice(PORTS), dst, rng.choice(PORTS))


def random_filter(rng, pool=None):
    """A filter drawn from every shape the data plane sees.

    ``pool`` is a list of five-tuples the exact filters are drawn from,
    so packets sampled from the same pool actually hit them.
    """
    kind = rng.randrange(8)
    if kind == 0:
        return Filter.wildcard()
    if kind == 1:
        return Filter({"nw_src": rng.choice(["10.0.0.0/8", "203.0.113.0/24"])})
    if kind == 2:
        return Filter({"tp_dst": rng.choice(PORTS)})
    if kind == 3:
        return Filter({"nw_src": rng.choice(IPS[:20])})
    ft = rng.choice(pool) if pool else random_five_tuple(rng)
    if rng.random() < 0.3:
        ft = ft.reversed()
    return Filter(ft.headers(), symmetric=(kind >= 6))


class TestExactKey:
    def test_wildcard_and_partial_filters_have_no_key(self):
        assert Filter.wildcard().exact_key() is None
        assert Filter({"nw_src": "10.0.0.1"}).exact_key() is None
        assert Filter({"nw_src": "10.0.0.0/8"}).exact_key() is None
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        extra = dict(ft.headers(), http_url="/x")
        assert Filter(extra).exact_key() is None

    def test_prefix_in_full_tuple_disqualifies(self):
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        fields = dict(ft.headers(), nw_src="10.0.0.0/24")
        assert Filter(fields).exact_key() is None

    def test_slash_32_counts_as_exact(self):
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        fields = dict(ft.headers(), nw_src="10.0.0.1/32")
        assert Filter(fields).exact_key() == Filter(ft.headers()).exact_key()

    def test_oriented_keys_distinguish_direction(self):
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        fwd = Filter(ft.headers()).exact_key()
        rev = Filter(ft.reversed().headers()).exact_key()
        assert fwd is not None and rev is not None and fwd != rev

    def test_symmetric_keys_canonicalize_direction(self):
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        fwd = Filter(ft.headers(), symmetric=True).exact_key()
        rev = Filter(ft.reversed().headers(), symmetric=True).exact_key()
        assert fwd is not None and fwd == rev

    def test_packet_keys_hit_matching_filters(self):
        """A filter matches a packet iff one of the packet's two keys is
        the filter's key — the invariant the bucket probe relies on."""
        rng = random.Random(7)
        for _ in range(300):
            flt_tuple = random_five_tuple(rng)
            symmetric = rng.random() < 0.5
            flt = Filter(flt_tuple.headers(), symmetric=symmetric)
            packet = Packet(random_five_tuple(rng))
            keys = packet_match_keys(packet.headers())
            assert (flt.exact_key() in keys) == flt.matches_packet(packet)


class TestFlowTableDifferential:
    def test_randomized_lookup_equivalence(self):
        """≥1k randomized rules with churn: indexed lookup returns the
        exact same entry object as the linear oracle for every packet."""
        rng = random.Random(42)
        pool = [random_five_tuple(rng) for _ in range(2000)]
        table = FlowTable(indexed=True)
        installed = []
        for step in range(4000):
            if installed and rng.random() < 0.2:
                flt, priority = rng.choice(installed)
                table.remove(flt, priority)
            else:
                flt = random_filter(rng, pool)
                priority = rng.choice([10, 100, 100, 100, 1000])
                table.install(flt, priority, ["p%d" % step], float(step))
                installed.append((flt, priority))
        assert len(table) >= 1000
        for _ in range(500):
            packet = Packet(rng.choice(pool) if rng.random() < 0.7
                            else random_five_tuple(rng))
            table.indexed = True
            fast = table.lookup(packet)
            table.indexed = False
            slow = table.lookup(packet)
            assert fast is slow

    def test_randomized_find_and_overlap_equivalence(self):
        rng = random.Random(43)
        pool = [random_five_tuple(rng) for _ in range(150)]
        table = FlowTable(indexed=True)
        filters = [random_filter(rng, pool) for _ in range(400)]
        for i, flt in enumerate(filters):
            table.install(flt, rng.choice([10, 100, 1000]), ["p%d" % i],
                          float(i))
        for _ in range(200):
            probe = rng.choice(filters) if rng.random() < 0.7 else \
                random_filter(rng, pool)
            table.indexed = True
            fast_find = table.find(probe)
            fast_overlap = table.entries_overlapping(probe)
            table.indexed = False
            assert fast_find is table.find(probe)
            slow_overlap = table.entries_overlapping(probe)
            assert [e.entry_id for e in fast_overlap] == \
                [e.entry_id for e in slow_overlap]

    def test_switch_forward_log_identical(self):
        """End to end: the same rules + packets produce byte-identical
        forward logs whether the table is indexed or linear."""

        def run(indexed):
            reset_uid_counter()
            rng = random.Random(99)
            pool = [random_five_tuple(rng) for _ in range(200)]
            sim = Simulator()
            switch = Switch(sim)
            switch.table.indexed = indexed
            for port in ("a", "b", "c"):
                switch.attach(port, lambda p: None, Link(sim))
            for step in range(300):
                switch.table.install(
                    random_filter(rng, pool), rng.choice([10, 100, 1000]),
                    [rng.choice(["a", "b", "c"])], 0.0,
                )
            for _ in range(400):
                switch.inject(Packet(rng.choice(pool)))
            sim.run()
            return switch.forward_log

        assert run(True) == run(False)


class TestEventRuleDifferential:
    def _loaded_nf(self, rng, pool):
        nf = DummyNF(Simulator(), "dut")
        actions = [EventAction.PROCESS, EventAction.BUFFER, EventAction.DROP]
        enabled = []
        for _ in range(800):
            if enabled and rng.random() < 0.15:
                nf.sb_disable_events(rng.choice(enabled))
            else:
                flt = random_filter(rng, pool)
                nf.sb_enable_events(flt, rng.choice(actions))
                enabled.append(flt)
        return nf

    def test_match_rule_equivalence(self):
        rng = random.Random(4242)
        pool = [random_five_tuple(rng) for _ in range(500)]
        nf = self._loaded_nf(rng, pool)
        assert nf.event_rule_count > 300
        for _ in range(500):
            packet = Packet(rng.choice(pool) if rng.random() < 0.7
                            else random_five_tuple(rng))
            nf.use_indexed_rules = True
            fast = nf._match_rule(packet)
            nf.use_indexed_rules = False
            slow = nf._match_rule(packet)
            assert fast is slow
            if fast is not None:
                assert fast.effective_action(packet) is \
                    slow.effective_action(packet)

    def test_update_in_place_keeps_precedence(self):
        """Re-enabling an existing filter must not promote it over rules
        enabled later — in either matching mode."""
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        for indexed in (True, False):
            nf = DummyNF(Simulator(), "dut")
            nf.use_indexed_rules = indexed
            nf.sb_enable_events(Filter(ft.headers()), EventAction.BUFFER)
            nf.sb_enable_events(Filter.wildcard(), EventAction.DROP)
            nf.sb_enable_events(Filter(ft.headers()), EventAction.PROCESS)
            rule = nf._match_rule(Packet(ft))
            assert rule.action is EventAction.DROP


class TestStateStoreDifferential:
    def test_keys_matching_equivalence(self):
        rng = random.Random(77)
        store = DummyNF(Simulator(), "dut").flows
        for step in range(800):
            if rng.random() < 0.65:
                fid = FlowId.for_flow(random_five_tuple(rng).canonical())
            elif rng.random() < 0.5:
                fid = FlowId.for_host(rng.choice(IPS))
            else:
                fid = FlowId(random_five_tuple(rng).headers())
            if fid in store and rng.random() < 0.3:
                del store[fid]
            else:
                store[fid] = {"step": step}
        relevant = ("nw_src", "nw_dst", "nw_proto", "tp_src", "tp_dst")
        for _ in range(300):
            flt = random_filter(rng)
            fast = store.keys_matching(flt, relevant, indexed=True)
            slow = store.keys_matching(flt, relevant, indexed=False)
            assert fast == slow

    def test_projection_drops_fast_path_not_matches(self):
        """When relevant_fields discards some constraints, the indexed
        store must fall back to full §4.2 semantics."""
        ft = FiveTuple("10.0.0.1", 80, "10.0.0.2", 443)
        store = DummyNF(Simulator(), "dut").flows
        host = FlowId.for_host("10.0.0.1")
        store[host] = {}
        flt = Filter(ft.headers())
        # Projected onto IPs only, the full-tuple filter still selects the
        # host aggregate; both strategies must agree.
        fast = store.keys_matching(flt, ("nw_src", "nw_dst"), indexed=True)
        slow = store.keys_matching(flt, ("nw_src", "nw_dst"), indexed=False)
        assert fast == slow == [host]
