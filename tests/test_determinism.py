"""Determinism: identical seeds must yield bit-identical experiment runs.

The whole reproducibility story rests on this — every race in the
simulator is deterministic given the seed, so a failing property test
can always be replayed.
"""

import pytest

from repro.harness import run_move_experiment
from repro.net.packet import reset_uid_counter


def snapshot(result):
    dep = result.deployment
    return {
        "duration": result.report.duration_ms,
        "phases": dict(result.report.phases),
        "dropped": result.report.packets_dropped,
        "evented": result.report.packets_in_events,
        "affected": sorted(result.report.affected_uids),
        "logs": {
            name: list(nf.processing_log) for name, nf in dep.nfs.items()
        },
        "forward_log": list(dep.switch.forward_log),
        "latency": sorted(result.latency.samples),
    }


class TestDeterminism:
    @pytest.mark.parametrize("guarantee", ["ng", "lf", "op"])
    def test_same_seed_same_world(self, guarantee):
        reset_uid_counter()
        first = snapshot(run_move_experiment(guarantee, n_flows=40, seed=5))
        reset_uid_counter()
        second = snapshot(run_move_experiment(guarantee, n_flows=40, seed=5))
        assert first == second

    def test_different_seed_different_trace(self):
        reset_uid_counter()
        first = snapshot(run_move_experiment("lf", n_flows=40, seed=5))
        reset_uid_counter()
        second = snapshot(run_move_experiment("lf", n_flows=40, seed=6))
        assert first["logs"] != second["logs"]


@pytest.mark.obs
class TestObservedDeterminism:
    """Observation must be deterministic — and must not perturb the run."""

    def _observed_snapshot(self, **kwargs):
        reset_uid_counter()
        result = run_move_experiment(observe=True, **kwargs)
        obs = result.deployment.obs
        return {
            "spans": [span.to_dict() for span in obs.exporter.spans],
            "records": list(obs.exporter.records),
            "metrics": obs.metrics.snapshot(),
            "phases": dict(result.report.phases),
        }

    @pytest.mark.parametrize("guarantee", ["lf", "op"])
    def test_same_seed_same_trace(self, guarantee):
        first = self._observed_snapshot(guarantee=guarantee, n_flows=40,
                                        seed=5)
        second = self._observed_snapshot(guarantee=guarantee, n_flows=40,
                                         seed=5)
        assert first == second

    def test_observation_does_not_perturb_the_world(self):
        """Tracing only records; the simulated timeline is untouched."""
        reset_uid_counter()
        plain = snapshot(run_move_experiment("op", n_flows=40, seed=5))
        reset_uid_counter()
        seen = snapshot(
            run_move_experiment("op", n_flows=40, seed=5, observe=True)
        )
        assert plain == seen


@pytest.mark.obs
class TestTelemetryDeterminism:
    """Full telemetry (time-series + sampling) must be purely passive.

    The scale-ready claim rests on this: leaving the windowed
    time-series, the trace sampler, and the bounded histograms on must
    leave the operation timeline byte-identical to a bare run — on a
    single controller, on a sharded control plane, and with the
    data-plane offload engaged.
    """

    @pytest.mark.parametrize("extra", [
        {},
        {"shards": 2},
        {"offload": True},
    ], ids=["single", "shards2", "offload"])
    def test_telemetry_does_not_perturb_the_world(self, extra):
        reset_uid_counter()
        plain = snapshot(
            run_move_experiment("lf", n_flows=40, seed=5, **extra)
        )
        reset_uid_counter()
        telemetered = snapshot(
            run_move_experiment("lf", n_flows=40, seed=5, telemetry=True,
                                **extra)
        )
        assert plain == telemetered

    def test_same_seed_same_telemetry(self):
        def capture():
            reset_uid_counter()
            result = run_move_experiment("lf", n_flows=40, seed=5,
                                         telemetry=True)
            obs = result.deployment.obs
            stats = obs.flush_sampling()
            return {
                "windows": obs.timeseries.snapshot(),
                "prometheus": obs.timeseries.render_prometheus(),
                "sampling": stats,
                "records": list(obs.exporter.records),
            }

        assert capture() == capture()
