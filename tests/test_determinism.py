"""Determinism: identical seeds must yield bit-identical experiment runs.

The whole reproducibility story rests on this — every race in the
simulator is deterministic given the seed, so a failing property test
can always be replayed.
"""

import pytest

from repro.harness import run_move_experiment
from repro.net.packet import reset_uid_counter


def snapshot(result):
    dep = result.deployment
    return {
        "duration": result.report.duration_ms,
        "phases": dict(result.report.phases),
        "dropped": result.report.packets_dropped,
        "evented": result.report.packets_in_events,
        "affected": sorted(result.report.affected_uids),
        "logs": {
            name: list(nf.processing_log) for name, nf in dep.nfs.items()
        },
        "forward_log": list(dep.switch.forward_log),
        "latency": sorted(result.latency.samples),
    }


class TestDeterminism:
    @pytest.mark.parametrize("guarantee", ["ng", "lf", "op"])
    def test_same_seed_same_world(self, guarantee):
        reset_uid_counter()
        first = snapshot(run_move_experiment(guarantee, n_flows=40, seed=5))
        reset_uid_counter()
        second = snapshot(run_move_experiment(guarantee, n_flows=40, seed=5))
        assert first == second

    def test_different_seed_different_trace(self):
        reset_uid_counter()
        first = snapshot(run_move_experiment("lf", n_flows=40, seed=5))
        reset_uid_counter()
        second = snapshot(run_move_experiment("lf", n_flows=40, seed=6))
        assert first["logs"] != second["logs"]
