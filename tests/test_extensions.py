"""Tests for the paper-sketched extensions: compression and P2P transfer."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import (
    LOCAL_NET_FILTER,
    build_multi_instance_deployment,
    check_loss_free,
    run_move_experiment,
)
from repro.nf import NFClient, Scope, StateChunk
from repro.nfs.monitor import AssetMonitor
from repro.sim import Simulator
from tests.conftest import make_packet


class TestChunkCompression:
    def test_compressed_size_smaller_for_redundant_state(self):
        chunk = StateChunk(Scope.PERFLOW, None, {"blob": "a" * 2000})
        assert chunk.compressed_size_bytes < chunk.size_bytes

    def test_preset_large_sizes_use_paper_ratio(self):
        chunk = StateChunk(Scope.MULTIFLOW, None, {"url": "/x"},
                           size_bytes=1_000_000)
        assert chunk.compressed_size_bytes == 620_000

    def test_wire_size_follows_flag(self):
        chunk = StateChunk(Scope.PERFLOW, None, {"blob": "b" * 2000})
        assert chunk.wire_size_bytes == chunk.size_bytes
        chunk.compressed = True
        assert chunk.wire_size_bytes == chunk.compressed_size_bytes

    def test_get_with_compress_marks_chunks(self, sim, flow):
        nf = AssetMonitor(sim, "mon")
        nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        client = NFClient(sim, nf)
        done = client.get_perflow(Filter.wildcard(), compress=True)
        sim.run()
        assert all(chunk.compressed for chunk in done.value)

    def test_compressed_move_is_loss_free_and_smaller_on_wire(self):
        result = run_move_experiment(
            n_flows=60,
            operation=lambda dep: dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf",
                compress=True,
            ),
        )
        assert result.loss_free, result.loss_free_detail
        assert result.report.total_wire_bytes < result.report.total_bytes
        assert result.deployment.nfs["inst2"].conn_count() == 60

    def test_compression_costs_cpu_time(self, sim, flow):
        plain_nf = AssetMonitor(sim, "plain")
        squeeze_nf = AssetMonitor(sim, "squeeze")
        for nf in (plain_nf, squeeze_nf):
            nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        start = sim.now
        plain = plain_nf.sb_get(Scope.PERFLOW, Filter.wildcard())
        sim.run()
        plain_elapsed = sim.now - start
        start = sim.now
        squeezed = squeeze_nf.sb_get(Scope.PERFLOW, Filter.wildcard(),
                                     compress=True)
        sim.run()
        squeezed_elapsed = sim.now - start
        assert squeezed_elapsed > plain_elapsed


class TestPeerToPeerTransfer:
    def test_requires_streaming(self, two_monitor_deployment):
        dep, _src, _dst = two_monitor_deployment
        with pytest.raises(ValueError):
            dep.controller.move(
                "prads1", "prads2", Filter.wildcard(),
                parallel=False, peer_to_peer=True,
            )

    def test_p2p_move_is_loss_free(self):
        result = run_move_experiment(
            n_flows=60,
            operation=lambda dep: dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf",
                peer_to_peer=True,
            ),
        )
        assert result.loss_free, result.loss_free_detail
        assert result.deployment.nfs["inst2"].conn_count() == 60
        assert result.report.total_chunks == 60

    def test_p2p_bypasses_controller_inbox(self):
        relayed = run_move_experiment(n_flows=80, guarantee="lf")
        p2p = run_move_experiment(
            n_flows=80,
            operation=lambda dep: dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf",
                peer_to_peer=True,
            ),
        )
        relayed_handled = relayed.deployment.controller.inbox.items_handled
        p2p_handled = p2p.deployment.controller.inbox.items_handled
        # The relayed move pushes every chunk through the inbox; P2P only
        # the events.
        assert p2p_handled < relayed_handled

    def test_p2p_with_early_release(self):
        result = run_move_experiment(
            n_flows=80, rate_pps=4000.0,
            operation=lambda dep: dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf",
                peer_to_peer=True, early_release=True,
            ),
        )
        assert result.loss_free, result.loss_free_detail
        # Early release worked: fewer evented packets than the op window
        # would otherwise accumulate at this rate.
        plain = run_move_experiment(n_flows=80, rate_pps=4000.0,
                                    guarantee="lf")
        assert (result.report.packets_in_events
                < plain.report.packets_in_events)

    def test_p2p_compressed_combination(self):
        result = run_move_experiment(
            n_flows=40,
            operation=lambda dep: dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf",
                peer_to_peer=True, compress=True,
            ),
        )
        assert result.loss_free
        assert result.report.total_wire_bytes < result.report.total_bytes


class TestChannelModel:
    def test_bandwidth_is_shared_across_messages(self, sim):
        from repro.net.channel import ControlChannel

        channel = ControlChannel(sim, latency_ms=1.0,
                                 bandwidth_bytes_per_ms=100.0)
        arrivals = []
        # Three 200-byte messages sent back-to-back: transmissions must
        # serialize (2 ms each), not overlap.
        for _ in range(3):
            channel.send(200, lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [3.0, 5.0, 7.0]

    def test_idle_channel_recovers(self, sim):
        from repro.net.channel import ControlChannel

        channel = ControlChannel(sim, latency_ms=1.0,
                                 bandwidth_bytes_per_ms=100.0)
        seen = []
        channel.send(200, lambda: seen.append(sim.now))
        sim.run()
        channel.send(200, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.0, 6.0]  # second message starts fresh at t=3
