"""Failure injection: operations must degrade gracefully, never wedge."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import LOCAL_NET_FILTER, build_multi_instance_deployment
from repro.nf import Scope
from repro.nfs.monitor import AssetMonitor
from tests.conftest import make_packet


def feed(dep, nf, count=10):
    for index in range(count):
        flow = FiveTuple("10.0.1.%d" % (index + 1), 30000 + index,
                         "203.0.113.5", 80)
        nf.receive(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


class TestCrashBeforeOperation:
    def test_get_on_failed_nf_fails_cleanly(self):
        dep, (a, _b) = build_multi_instance_deployment(2)
        feed(dep, a, 3)
        a.failed = True
        a.failure_reason = "injected"
        done = dep.controller.client("inst1").get_perflow(Filter.wildcard())
        dep.sim.run()
        assert done.triggered and not done.ok
        assert "down" in str(done.exception)

    def test_put_on_failed_nf_fails_cleanly(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 3)
        got = dep.controller.client("inst1").get_perflow(Filter.wildcard())
        dep.sim.run()
        b.failed = True
        b.failure_reason = "injected"
        put = dep.controller.client("inst2").put_perflow(got.value)
        dep.sim.run()
        assert put.triggered and not put.ok

    def test_move_from_dead_source_aborts(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 5)
        a.failed = True
        a.failure_reason = "power loss"
        op = dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                 guarantee="lf")
        dep.sim.run()
        report = op.done.value
        assert report.aborted is not None
        assert "down" in report.aborted
        assert b.conn_count() == 0

    def test_copy_from_dead_source_aborts(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 5)
        a.failed = True
        a.failure_reason = "oom"
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per")
        dep.sim.run()
        assert op.done.value.aborted is not None


class TestCrashMidOperation:
    def test_destination_dies_during_move(self):
        """dst dies while puts are in flight: the op aborts, simulation
        terminates, and nothing hangs."""
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 50)
        op = dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                 guarantee="lf")
        # Kill dst shortly after the operation begins.
        def kill() -> None:
            b.failed = True
            b.failure_reason = "mid-move crash"

        dep.sim.schedule(5.0, kill)
        dep.sim.run()
        report = op.done.value
        assert report.aborted is not None
        # Source events were re-enabled off / cleaned up.
        assert a.event_rule_count == 0

    def test_aborted_move_does_not_strand_buffered_events(self):
        """Events buffered at the controller are flushed to the live
        instance on abort."""
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 50)
        op = dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                 guarantee="lf")

        def kill_dst_and_traffic() -> None:
            b.failed = True
            b.failure_reason = "crash"
            # Packets arriving while src's DROP rule is live get evented.
            for index in range(5):
                flow = FiveTuple("10.0.1.%d" % (index + 1), 30000 + index,
                                 "203.0.113.5", 80)
                dep.inject(make_packet(flow, payload="late"))

        dep.sim.schedule(6.0, kill_dst_and_traffic)
        dep.sim.run()
        report = op.done.value
        assert report.aborted is not None
        # Buffered packets were handed back to the still-alive source
        # rather than stranded at the controller.
        assert not op._event_buffer
        dep.sim.run()
        assert a.packets_processed >= 50

    def test_operations_after_abort_still_work(self):
        dep, (a, b, _c) = build_multi_instance_deployment(3)
        feed(dep, a, 5)
        b.failed = True
        b.failure_reason = "dead"
        first = dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                    guarantee="lf")
        dep.sim.run()
        assert first.done.value.aborted
        # Retry towards a healthy instance succeeds.
        second = dep.controller.move("inst1", "inst3", LOCAL_NET_FILTER,
                                     guarantee="lf")
        dep.sim.run()
        report = second.done.value
        assert report.aborted is None
        third = dep.controller.client("inst3")
        assert third.nf.conn_count() == 5
