"""Fault injection and control-plane reliability (unreliable-network PR).

Covers the seeded :class:`~repro.faults.FaultPlan` machinery end to end:

* spec parsing and per-channel injector determinism;
* the zero-perturbation contract — no plan installed means the classic
  code paths run byte-for-byte unchanged;
* at-most-once southbound RPCs (request ids + NF-side dedup) so a
  replayed ``put_perflow`` never double-applies;
* the headline acceptance run — a loss-free + order-preserving move
  completes under 5% control-channel loss with every packet processed
  exactly once and a nonzero retry count;
* failure semantics of the operations themselves: aborted copies report
  how many chunks already landed, crash-during-share keeps the live
  replicas convergent, and the failover app's health loop/subscriptions
  do not leak.
"""

import pytest

from repro.apps import FastFailureRecovery
from repro.faults import ChannelFaults, CrashSpec, FaultPlan
from repro.flowspace import Filter, FiveTuple
from repro.harness import (
    Deployment,
    build_multi_instance_deployment,
    run_move_experiment,
)
from repro.net.packet import reset_uid_counter
from repro.nfs.monitor import AssetMonitor
from repro.sim import Simulator

from tests.conftest import make_packet
from tests.test_determinism import snapshot

pytestmark = pytest.mark.faults


def feed(dep, nf, count=5, client="10.0.1.2"):
    for i in range(count):
        flow = FiveTuple(client, 30000 + i, "203.0.113.5", 80)
        nf.receive(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


class TestFaultPlanSpec:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=9,drop=0.1,dup=0.05,delay=0.2,delay_ms=15,"
            "partition=10:40;90:95,crash=inst2@55,crash=inst3#7"
        )
        assert plan.seed == 9
        rule = plan.channels[0]
        assert rule.drop_p == 0.1
        assert rule.dup_p == 0.05
        assert rule.delay_p == 0.2
        assert rule.delay_ms == 15.0
        assert rule.partitions == [(10.0, 40.0), (90.0, 95.0)]
        crashes = {c.nf_name: c for c in plan.crashes}
        assert crashes["inst2"].at_ms == 55.0
        assert crashes["inst3"].on_nth_rpc == 7
        assert plan.crashes_for("inst2") == [crashes["inst2"]]
        assert plan.crashes_for("nobody") == []

    def test_default_channels_exclude_switch(self):
        plan = FaultPlan.from_spec("drop=0.5")
        assert plan.injector_for("ctrl->inst1") is not None
        assert plan.injector_for("inst1->ctrl") is not None
        assert plan.injector_for("ctrl->sw") is None
        assert plan.injector_for("sw->ctrl") is None

    def test_explicit_channels_override_default(self):
        plan = FaultPlan.from_spec("drop=0.5,channels=ctrl->inst2")
        assert plan.injector_for("ctrl->inst2") is not None
        assert plan.injector_for("ctrl->inst1") is None

    def test_delay_probability_defaults_magnitude(self):
        plan = FaultPlan.from_spec("delay=0.3")
        assert plan.channels[0].delay_ms == 10.0

    def test_inert_spec_has_no_rules(self):
        plan = FaultPlan.from_spec("seed=4")
        assert plan.channels == []
        assert plan.injector_for("ctrl->inst1") is None

    @pytest.mark.parametrize("spec", [
        "bogus=1",
        "drop",
        "crash=inst1",
        "drop=2.0",
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(spec)

    def test_crash_spec_validation(self):
        with pytest.raises(ValueError):
            CrashSpec("inst1").validate()
        with pytest.raises(ValueError):
            CrashSpec("inst1", at_ms=5.0, on_nth_rpc=2).validate()
        with pytest.raises(ValueError):
            CrashSpec("inst1", on_nth_rpc=0).validate()

    def test_partition_window_drops_everything(self):
        rule = ChannelFaults(pattern="*", partitions=[(10.0, 20.0)])
        plan = FaultPlan(seed=1, channels=[rule])
        injector = plan.injector_for("ctrl->inst1")
        assert injector.on_send(15.0).deliver is False
        assert injector.on_send(25.0).deliver is True
        assert injector.on_send(20.0).deliver is True  # half-open window
        assert injector.dropped == 1

    def test_same_seed_same_verdicts(self):
        def verdicts():
            injector = FaultPlan.from_spec(
                "seed=11,drop=0.3,dup=0.3,delay=0.3"
            ).injector_for("ctrl->inst1")
            return [
                (v.deliver, v.copies, v.extra_delay_ms)
                for v in (injector.on_send(0.0) for _ in range(200))
            ]

        assert verdicts() == verdicts()

    def test_channels_draw_independent_streams(self):
        plan = FaultPlan.from_spec("seed=11,drop=0.3")
        a = plan.injector_for("ctrl->inst1")
        b = plan.injector_for("ctrl->inst2")
        drops_a = [a.on_send(0.0).deliver for _ in range(100)]
        drops_b = [b.on_send(0.0).deliver for _ in range(100)]
        assert drops_a != drops_b


class TestNoPlanIsInert:
    """Without a fault plan the reliability layer must not exist."""

    def test_no_plan_keeps_runs_identical(self):
        reset_uid_counter()
        first = snapshot(run_move_experiment("op", n_flows=40, seed=5))
        reset_uid_counter()
        second = snapshot(run_move_experiment("op", n_flows=40, seed=5))
        assert first == second

    def test_classic_mode_machinery_off(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 3)
        op = dep.controller.move("inst1", "inst2", Filter.wildcard(),
                                 guarantee="lf")
        dep.sim.run()
        assert op.done.triggered
        assert dep.controller.reliable is False
        for client in dep.controller.clients.values():
            assert client.stats["retries"] == 0
            assert client.stats["timeouts"] == 0
            assert not client.nf._rpc_seen  # no request ids were issued
            assert client.to_nf.faults is None
            assert client.from_nf.faults is None
        assert op.done.value.retries == 0

    def test_plan_switches_reliable_mode_on(self):
        dep, _ = build_multi_instance_deployment(
            2, deployment_kwargs={"faults": "seed=1"}
        )
        assert dep.controller.reliable is True
        assert dep.faults is not None


class TestIdempotentReplay:
    def test_rpc_deliver_is_at_most_once(self):
        sim = Simulator()
        nf = AssetMonitor(sim, "nf1")
        calls = []
        nf.rpc_deliver(1, lambda: calls.append("run"))
        assert calls == ["run"]
        # A duplicate arriving while the call is in flight is absorbed.
        nf.rpc_deliver(1, lambda: calls.append("run"))
        assert calls == ["run"]
        # Once the response is cached, a replay re-sends it instead of
        # re-executing the handler.
        nf.rpc_complete(1, lambda: calls.append("resend"))
        nf.rpc_deliver(1, lambda: calls.append("run"))
        assert calls == ["run", "resend"]
        assert nf.rpcs_deduplicated == 2
        assert nf.rpcs_delivered == 3

    def test_duplicated_put_applies_once(self):
        """Satellite: a replayed put_perflow must never double-apply."""
        dep, (a, b) = build_multi_instance_deployment(
            2, deployment_kwargs={"faults": "seed=2,dup=0.7"}
        )
        feed(dep, a, 4)
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per")
        dep.sim.run()
        assert op.done.triggered
        plan = dep.faults
        assert plan.messages_duplicated > 0
        assert a.rpcs_deduplicated + b.rpcs_deduplicated > 0
        # State landed exactly once despite the duplicate deliveries.
        assert b.conn_count() == a.conn_count() == 4

    def test_duplicated_multiflow_copy_does_not_inflate(self):
        dep, (a, b) = build_multi_instance_deployment(
            2, deployment_kwargs={"faults": "seed=2,dup=0.7"}
        )
        feed(dep, a, 3)
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "multi")
        dep.sim.run()
        assert op.done.triggered
        asset = b.asset_for("10.0.1.2")
        assert asset is not None
        assert asset.connections == a.asset_for("10.0.1.2").connections


class TestLossyMoveAcceptance:
    """The headline criterion: LF+OP under 5% control-channel loss."""

    def test_exactly_once_under_loss(self):
        result = run_move_experiment(
            guarantee="op",
            n_flows=100,
            rate_pps=2500.0,
            data_packets=20,
            seed=7,
            fault_plan="seed=3,drop=0.05",
        )
        report = result.report
        assert report.aborted is None, report.aborted
        assert report.retries > 0
        counts = result.deployment.processed_uid_counts()
        missing = [p.uid for p in result.replayer.injected
                   if p.uid not in counts]
        duplicated = {uid: n for uid, n in counts.items() if n > 1}
        assert missing == []
        assert duplicated == {}
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail
        assert result.deployment.faults.messages_dropped > 0

    def test_loss_with_duplication_and_delay(self):
        result = run_move_experiment(
            guarantee="lf",
            n_flows=50,
            rate_pps=2000.0,
            seed=7,
            fault_plan="seed=5,drop=0.03,dup=0.05,delay=0.1,delay_ms=5",
        )
        assert result.report.aborted is None, result.report.aborted
        counts = result.deployment.processed_uid_counts()
        assert all(n == 1 for n in counts.values())
        assert result.loss_free, result.loss_free_detail


class TestCrashSemantics:
    def test_crash_spec_kills_nf_at_time(self):
        dep, (a, b) = build_multi_instance_deployment(
            2, deployment_kwargs={"faults": "crash=inst2@5"}
        )
        dep.sim.run(until=10.0)
        assert b.failed
        assert not a.failed

    def test_move_to_crashed_dst_aborts_with_restore(self):
        dep, (a, b) = build_multi_instance_deployment(
            2, deployment_kwargs={"faults": "crash=inst2#2"}
        )
        feed(dep, a, 4)
        op = dep.controller.move("inst1", "inst2", Filter.wildcard(),
                                 guarantee="lf")
        dep.sim.run()
        report = op.done.value
        assert report.aborted is not None
        # Source state restored so traffic keeps flowing at inst1.
        assert a.conn_count() == 4

    def test_aborted_copy_reports_partial_chunks(self):
        """Satellite: the report says how many chunks already landed."""
        dep, (a, b) = build_multi_instance_deployment(
            2, deployment_kwargs={"faults": "crash=inst2#3"}
        )
        feed(dep, a, 6)
        op = dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per")
        dep.sim.run()
        report = op.done.value
        assert report.aborted is not None
        assert report.partial_chunks >= 1
        assert any("chunks already delivered" in n for n in report.notes)

    def test_crash_during_strong_share_keeps_replicas_convergent(self):
        """Satellite: strong consistency means all live replicas apply
        an update or none of them do — a mid-session crash must not
        leave the survivors divergent."""
        dep, (a, b, c) = build_multi_instance_deployment(
            3, deployment_kwargs={"faults": "crash=inst2@18"}
        )
        share = dep.controller.share(
            ["inst1", "inst2", "inst3"],
            Filter.wildcard(),
            scope="multi",
            consistency="strong",
            group_by="host",
        )
        dep.sim.run()
        assert share.started.triggered
        # Default route sends everything to inst1; its updates fan out
        # to inst2 until the crash, then to inst3 alone.
        for i in range(8):
            flow = FiveTuple("10.0.1.5", 40000 + i, "203.0.113.9", 80)
            dep.inject(make_packet(flow, flags=("SYN",)))
            dep.sim.run(until=dep.sim.now + 6.0)
        dep.sim.run()
        assert b.failed
        # Every live replica holds the same view of the shared host.
        asset_a = a.asset_for("10.0.1.5")
        asset_c = c.asset_for("10.0.1.5")
        assert asset_a is not None and asset_c is not None
        assert asset_a.connections == asset_c.connections
        share.stop()
        dep.sim.run()
        assert not c.failed and not a.failed


class TestFailoverHygiene:
    """Satellites: subscription cleanup and health-loop termination."""

    def _deployment(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        app = FastFailureRecovery(dep.controller, health_poll_ms=10.0)
        app.init_standby("inst1", "inst2")
        dep.sim.run()
        return dep, app, a, b

    def test_stop_releases_subscriptions(self):
        dep, app, a, b = self._deployment()
        ctrl = dep.controller
        before = len(ctrl._packet_interests) + len(ctrl._event_interests)
        assert before >= 3  # the three notify() subscriptions
        app.stop()
        dep.sim.run()
        after = len(ctrl._packet_interests) + len(ctrl._event_interests)
        assert after == before - 3
        assert app._subscriptions == {}

    def test_failover_releases_primary_subscriptions(self):
        dep, app, a, b = self._deployment()
        ctrl = dep.controller
        before = len(ctrl._packet_interests) + len(ctrl._event_interests)
        a.failed = True
        app.recover("inst1")
        dep.sim.run()
        after = len(ctrl._packet_interests) + len(ctrl._event_interests)
        assert after == before - 3
        assert "inst1" not in app._subscriptions

    def test_health_loop_exits_after_last_recovery(self):
        dep, app, a, b = self._deployment()
        app.watch()
        a.failed = True
        dep.sim.run(until=dep.sim.now + 200.0)
        assert app.recoveries == 1
        assert app._watching is False  # loop ended, queue can drain
        # With no watcher alive the sim must now run dry on its own.
        dep.sim.run()
