"""Tests for IP helpers, five-tuples, filters, and flow ids."""

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId, ip_in_prefix, ip_to_int
from repro.flowspace.fivetuple import TCP, UDP
from repro.flowspace.ip import parse_prefix, prefix_covers, prefixes_overlap
from repro.net.packet import Packet


class TestIpHelpers:
    def test_ip_to_int(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("0.0.0.1") == 1
        assert ip_to_int("10.0.0.0") == 10 * 2**24
        assert ip_to_int("255.255.255.255") == 2**32 - 1

    def test_ip_to_int_rejects_bad_input(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.300")

    def test_parse_prefix_bare_address_is_slash32(self):
        network, mask = parse_prefix("10.1.2.3")
        assert mask == 0xFFFFFFFF
        assert network == ip_to_int("10.1.2.3")

    def test_parse_prefix_slash8(self):
        network, mask = parse_prefix("10.0.0.0/8")
        assert mask == 0xFF000000
        assert network == ip_to_int("10.0.0.0")

    def test_parse_prefix_zero_length_matches_all(self):
        assert ip_in_prefix("192.168.1.1", "0.0.0.0/0")

    def test_parse_prefix_rejects_bad_length(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/33")

    def test_ip_in_prefix(self):
        assert ip_in_prefix("10.1.2.3", "10.0.0.0/8")
        assert not ip_in_prefix("11.1.2.3", "10.0.0.0/8")
        assert ip_in_prefix("10.0.1.7", "10.0.1.0/24")
        assert not ip_in_prefix("10.0.2.7", "10.0.1.0/24")

    def test_prefix_covers(self):
        assert prefix_covers("10.0.0.0/8", "10.1.0.0/16")
        assert not prefix_covers("10.1.0.0/16", "10.0.0.0/8")
        assert prefix_covers("10.0.0.0/8", "10.0.0.0/8")
        assert not prefix_covers("10.0.0.0/8", "11.0.0.0/16")

    def test_prefixes_overlap(self):
        assert prefixes_overlap("10.0.0.0/8", "10.5.0.0/16")
        assert prefixes_overlap("10.5.0.0/16", "10.0.0.0/8")
        assert not prefixes_overlap("10.0.0.0/8", "11.0.0.0/8")
        assert prefixes_overlap("0.0.0.0/0", "203.0.113.9")


class TestFiveTuple:
    def test_reversed_swaps_endpoints(self, flow):
        rev = flow.reversed()
        assert rev.src_ip == flow.dst_ip
        assert rev.src_port == flow.dst_port
        assert rev.dst_ip == flow.src_ip
        assert rev.proto == flow.proto

    def test_canonical_is_direction_independent(self, flow):
        assert flow.canonical() == flow.reversed().canonical()

    def test_canonical_is_idempotent(self, flow):
        assert flow.canonical().canonical() == flow.canonical()

    def test_headers_fields(self, flow):
        headers = flow.headers()
        assert headers["nw_src"] == "10.0.1.2"
        assert headers["tp_dst"] == 80
        assert headers["nw_proto"] == TCP

    def test_proto_name(self, flow):
        assert flow.proto_name == "tcp"
        udp = FiveTuple("1.2.3.4", 5, "6.7.8.9", 53, UDP)
        assert udp.proto_name == "udp"

    def test_equality_and_hash(self, flow):
        same = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        assert flow == same
        assert hash(flow) == hash(same)

    def test_str_representation(self, flow):
        assert "10.0.1.2:1234" in str(flow)
        assert "tcp" in str(flow)


class TestFilterPacketMatching:
    def test_wildcard_matches_everything(self, flow):
        packet = Packet(flow)
        assert Filter.wildcard().matches_packet(packet)

    def test_exact_ip_match(self, flow):
        assert Filter({"nw_src": "10.0.1.2"}).matches_packet(Packet(flow))
        assert not Filter({"nw_src": "10.0.1.3"}).matches_packet(Packet(flow))

    def test_prefix_match(self, flow):
        assert Filter({"nw_src": "10.0.0.0/8"}).matches_packet(Packet(flow))
        assert not Filter({"nw_src": "192.168.0.0/16"}).matches_packet(Packet(flow))

    def test_port_and_proto_match(self, flow):
        assert Filter({"tp_dst": 80, "nw_proto": TCP}).matches_packet(Packet(flow))
        assert not Filter({"tp_dst": 443}).matches_packet(Packet(flow))

    def test_tcp_flags_require_all_named_flags(self, flow):
        syn_ack = Packet(flow, tcp_flags=("SYN", "ACK"))
        assert Filter({"tcp_flags": "SYN"}).matches_packet(syn_ack)
        assert Filter({"tcp_flags": ("SYN", "ACK")}).matches_packet(syn_ack)
        assert not Filter({"tcp_flags": "FIN"}).matches_packet(syn_ack)

    def test_flags_filter_misses_packet_without_flags(self, flow):
        assert not Filter({"tcp_flags": "SYN"}).matches_packet(Packet(flow))

    def test_directional_filter_misses_reverse_packet(self, flow):
        reply = Packet(flow.reversed())
        flt = Filter({"nw_src": "10.0.0.0/8"})
        assert not flt.matches_packet(reply)

    def test_symmetric_filter_matches_both_directions(self, flow):
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        assert flt.matches_packet(Packet(flow))
        assert flt.matches_packet(Packet(flow.reversed()))

    def test_symmetric_swaps_ports_consistently(self, flow):
        flt = Filter({"nw_src": "10.0.1.2", "tp_src": 1234}, symmetric=True)
        assert flt.matches_packet(Packet(flow))
        assert flt.matches_packet(Packet(flow.reversed()))
        # Mixed orientation must not match: src ip of one side with src
        # port of the other.
        mixed = Filter({"nw_src": "10.0.1.2", "tp_src": 80}, symmetric=True)
        assert not mixed.matches_packet(Packet(flow))
        assert not mixed.matches_packet(Packet(flow.reversed()))

    def test_for_flow_exact_filter(self, flow):
        flt = Filter.for_flow(flow)
        assert flt.matches_packet(Packet(flow))
        assert flt.matches_packet(Packet(flow.reversed()))
        other = FiveTuple("10.0.1.2", 9999, "203.0.113.5", 80)
        assert not flt.matches_packet(Packet(other))

    def test_with_fields_overrides(self, flow):
        base = Filter({"nw_src": "10.0.0.0/8"})
        narrowed = base.with_fields(tp_dst=80)
        assert narrowed.matches_packet(Packet(flow))
        assert "tp_dst" not in base.fields  # original untouched

    def test_extra_header_match(self, flow):
        packet = Packet(flow, extra_headers={"http_url": "/x"})
        assert Filter({"http_url": "/x"}).matches_packet(packet)
        assert not Filter({"http_url": "/y"}).matches_packet(packet)


class TestFilterAlgebra:
    def test_covers_broader_prefix(self):
        broad = Filter({"nw_src": "10.0.0.0/8"})
        narrow = Filter({"nw_src": "10.1.0.0/16"})
        assert broad.covers(narrow)
        assert not narrow.covers(broad)

    def test_covers_requires_field_presence(self):
        constrained = Filter({"tp_dst": 80})
        wildcard = Filter.wildcard()
        assert wildcard.covers(constrained)
        assert not constrained.covers(wildcard)

    def test_covers_exact_fields(self):
        a = Filter({"tp_dst": 80, "nw_proto": 6})
        b = Filter({"tp_dst": 80, "nw_proto": 6, "nw_src": "10.0.0.1"})
        assert a.covers(b)
        assert not b.covers(a)

    def test_intersects_overlapping_prefixes(self):
        a = Filter({"nw_src": "10.0.0.0/8"})
        b = Filter({"nw_src": "10.5.0.0/16"})
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_disjoint_fields_false(self):
        a = Filter({"tp_dst": 80})
        b = Filter({"tp_dst": 443})
        assert not a.intersects(b)

    def test_intersects_on_disjoint_dimensions(self):
        a = Filter({"tp_dst": 80})
        b = Filter({"nw_src": "10.0.0.0/8"})
        assert a.intersects(b)

    def test_equality_and_hash(self):
        a = Filter({"nw_src": "10.0.0.0/8", "tp_dst": 80})
        b = Filter({"tp_dst": 80, "nw_src": "10.0.0.0/8"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != Filter({"tp_dst": 80})
        assert a != Filter({"nw_src": "10.0.0.0/8", "tp_dst": 80}, symmetric=True)

    def test_roundtrip_dict(self):
        flt = Filter({"nw_src": "10.0.0.0/8", "tcp_flags": frozenset({"SYN"})},
                     symmetric=True)
        again = Filter.from_dict(flt.to_dict())
        assert again.symmetric
        assert again.fields["nw_src"] == "10.0.0.0/8"


class TestFlowIdMatching:
    def test_flowid_for_flow_is_hashable(self, flow):
        a = FlowId.for_flow(flow.canonical())
        b = FlowId.for_flow(flow.reversed().canonical())
        assert a == b
        assert hash(a) == hash(b)

    def test_filter_matches_perflow_flowid(self, flow):
        fid = FlowId.for_flow(flow)
        assert Filter({"nw_src": "10.0.0.0/8"}).matches_flowid(fid)
        assert not Filter({"nw_src": "172.16.0.0/12"}).matches_flowid(fid)

    def test_symmetric_flowid_matches_reversed_constraint(self, flow):
        fid = FlowId.for_flow(flow)  # symmetric by default
        assert Filter({"nw_dst": "10.0.1.2"}).matches_flowid(fid)

    def test_relevant_fields_restrict_matching(self, flow):
        fid = FlowId.for_host("203.0.113.5")
        flt = Filter({"nw_src": "10.0.0.0/8", "tp_dst": 80})
        # With only IP fields relevant, the host id lacks a matching IP.
        assert not flt.matches_flowid(fid, relevant_fields=("nw_src", "nw_dst"))
        host_filter = Filter({"nw_src": "203.0.113.0/24"})
        assert host_filter.matches_flowid(fid, relevant_fields=("nw_src", "nw_dst"))

    def test_flowid_missing_field_is_coarser(self):
        host = FlowId.for_host("10.0.1.2")
        # tp_dst constraint ignored: the host id has no port granularity.
        assert Filter({"nw_src": "10.0.0.0/8", "tp_dst": 80}).matches_flowid(host)

    def test_flowid_prefix_value_must_be_covered(self):
        subnet_state = FlowId({"nw_src": "10.1.0.0/16"})
        assert Filter({"nw_src": "10.0.0.0/8"}).matches_flowid(subnet_state)
        assert not Filter({"nw_src": "10.2.0.0/16"}).matches_flowid(subnet_state)

    def test_flowid_roundtrip(self, flow):
        fid = FlowId.for_flow(flow)
        again = FlowId.from_dict(fid.to_dict())
        assert again == fid
