"""Unit tests for FlowTable semantics and the exact-match index.

Every ordering-sensitive test runs against both the indexed fast path
and the linear reference oracle (``indexed=False``) — the two must be
bit-identical.
"""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.net import (
    HIGH_PRIORITY,
    LOW_PRIORITY,
    MID_PRIORITY,
    FlowTable,
    Link,
    Packet,
    Switch,
    TableFullError,
)
from repro.sim import Simulator


FLOW = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)


def exact_filter(ft=FLOW, symmetric=False):
    return Filter(ft.headers(), symmetric=symmetric)


@pytest.fixture(params=[True, False], ids=["indexed", "linear"])
def table(request):
    return FlowTable(indexed=request.param)


class TestLookupSemantics:
    def test_highest_priority_wins(self, table):
        table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        table.install(exact_filter(), MID_PRIORITY, ["b"], 0.0)
        assert table.lookup(Packet(FLOW)).actions == ("b",)

    def test_priority_tie_newest_wins(self, table):
        table.install(Filter({"nw_src": "10.0.1.2"}), MID_PRIORITY, ["old"], 0.0)
        table.install(Filter({"tp_dst": 80}), MID_PRIORITY, ["new"], 1.0)
        # Both match FLOW at the same priority; the later install wins.
        assert table.lookup(Packet(FLOW)).actions == ("new",)

    def test_exact_tie_newest_wins_across_orientations(self, table):
        table.install(exact_filter(symmetric=True), MID_PRIORITY, ["sym"], 0.0)
        table.install(exact_filter(), MID_PRIORITY, ["ori"], 1.0)
        assert table.lookup(Packet(FLOW)).actions == ("ori",)

    def test_symmetric_entry_matches_both_directions(self, table):
        table.install(exact_filter(symmetric=True), MID_PRIORITY, ["nf"], 0.0)
        assert table.lookup(Packet(FLOW)).actions == ("nf",)
        assert table.lookup(Packet(FLOW.reversed())).actions == ("nf",)

    def test_oriented_entry_matches_one_direction(self, table):
        table.install(exact_filter(), MID_PRIORITY, ["nf"], 0.0)
        assert table.lookup(Packet(FLOW)).actions == ("nf",)
        assert table.lookup(Packet(FLOW.reversed())) is None

    def test_wildcard_beats_lower_priority_exact(self, table):
        table.install(exact_filter(), LOW_PRIORITY, ["exact"], 0.0)
        table.install(Filter.wildcard(), HIGH_PRIORITY, ["wild"], 0.0)
        assert table.lookup(Packet(FLOW)).actions == ("wild",)

    def test_miss_returns_none(self, table):
        table.install(Filter({"tp_dst": 443}), MID_PRIORITY, ["a"], 0.0)
        assert table.lookup(Packet(FLOW)) is None

    def test_install_replaces_same_filter_and_priority(self, table):
        table.install(exact_filter(), MID_PRIORITY, ["a"], 0.0)
        table.install(exact_filter(), MID_PRIORITY, ["b"], 1.0)
        assert len(table) == 1
        assert table.lookup(Packet(FLOW)).actions == ("b",)


class TestRemoveAndFind:
    def test_remove_missing_is_noop(self, table):
        table.install(exact_filter(), MID_PRIORITY, ["a"], 0.0)
        assert table.remove(Filter({"tp_dst": 443})) == 0
        assert table.remove(exact_filter(), HIGH_PRIORITY) == 0
        assert len(table) == 1

    def test_remove_by_filter_and_priority(self, table):
        table.install(exact_filter(), MID_PRIORITY, ["a"], 0.0)
        table.install(exact_filter(), HIGH_PRIORITY, ["b"], 0.0)
        assert table.remove(exact_filter(), HIGH_PRIORITY) == 1
        assert table.lookup(Packet(FLOW)).actions == ("a",)

    def test_remove_all_priorities(self, table):
        table.install(exact_filter(), MID_PRIORITY, ["a"], 0.0)
        table.install(exact_filter(), HIGH_PRIORITY, ["b"], 0.0)
        assert table.remove(exact_filter()) == 2
        assert len(table) == 0
        assert table.lookup(Packet(FLOW)) is None

    def test_find_respects_symmetry_flag(self, table):
        table.install(exact_filter(symmetric=True), MID_PRIORITY, ["a"], 0.0)
        assert table.find(exact_filter()) is None
        assert table.find(exact_filter(symmetric=True)).actions == ("a",)

    def test_find_after_churn(self, table):
        for port in range(20):
            table.install(Filter({"tp_dst": port}), MID_PRIORITY, ["a"], 0.0)
        for port in range(0, 20, 2):
            table.remove(Filter({"tp_dst": port}))
        assert len(table) == 10
        assert table.find(Filter({"tp_dst": 3})) is not None
        assert table.find(Filter({"tp_dst": 4})) is None


class TestEntriesOverlapping:
    def test_exact_probe_finds_wildcards_and_both_orientations(self, table):
        table.install(Filter.wildcard(), LOW_PRIORITY, ["w"], 0.0)
        table.install(exact_filter(), MID_PRIORITY, ["o"], 0.0)
        table.install(
            Filter(FLOW.reversed().headers()), MID_PRIORITY, ["rev"], 0.0
        )
        table.install(exact_filter(symmetric=True), HIGH_PRIORITY, ["s"], 0.0)
        table.install(Filter({"tp_dst": 443}), MID_PRIORITY, ["other"], 0.0)

        # ``intersects`` compares the raw stored fields (the symmetric
        # flag is not consulted), so both probe orientations overlap the
        # wildcard, the same-orientation entry, and the symmetric entry —
        # not the reversed twin or the unrelated port rule.
        for probe in (exact_filter(symmetric=True), exact_filter()):
            actions = {e.actions[0] for e in table.entries_overlapping(probe)}
            assert actions == {"w", "o", "s"}

    def test_prefix_probe_falls_back_to_full_scan(self, table):
        table.install(exact_filter(), MID_PRIORITY, ["o"], 0.0)
        table.install(Filter({"tp_dst": 443}), MID_PRIORITY, ["other"], 0.0)
        probe = Filter({"nw_src": "10.0.0.0/8"})
        actions = {e.actions[0] for e in table.entries_overlapping(probe)}
        assert actions == {"o", "other"}

    def test_results_in_table_order(self, table):
        table.install(Filter.wildcard(), LOW_PRIORITY, ["w"], 0.0)
        table.install(exact_filter(), HIGH_PRIORITY, ["hi"], 0.0)
        table.install(exact_filter(symmetric=True), MID_PRIORITY, ["mid"], 0.0)
        result = [e.actions[0] for e in table.entries_overlapping(exact_filter())]
        assert result == ["hi", "mid", "w"]


class TestIndexedOracleAgreement:
    def test_toggle_preserves_lookups(self):
        table = FlowTable(indexed=True)
        filters = [
            Filter.wildcard(),
            Filter({"nw_src": "10.0.0.0/8"}),
            exact_filter(),
            exact_filter(symmetric=True),
            Filter(FLOW.reversed().headers()),
            Filter({"tp_dst": 80}),
        ]
        for i, flt in enumerate(filters):
            table.install(flt, MID_PRIORITY + (i % 3), ["p%d" % i], float(i))
        packets = [Packet(FLOW), Packet(FLOW.reversed()),
                   Packet(FiveTuple("172.16.0.1", 5, "172.16.0.2", 6))]
        for packet in packets:
            table.indexed = True
            fast = table.lookup(packet)
            table.indexed = False
            slow = table.lookup(packet)
            assert fast is slow


class TestCapacity:
    def test_capacity_rejection_with_indexed_table(self):
        sim = Simulator()
        switch = Switch(sim, table_capacity=2)
        switch.attach("a", lambda p: None, Link(sim))
        results = [
            switch.install(Filter({"tp_dst": port}), ["a"], MID_PRIORITY)
            for port in (1, 2, 3)
        ]
        sim.run()
        assert results[0].ok and results[1].ok and not results[2].ok
        assert isinstance(results[2].exception, TableFullError)
        assert len(switch.table) == 2


class TestRecordGroundTruth:
    def test_forward_log_off(self):
        sim = Simulator()
        switch = Switch(sim, record_ground_truth=False)
        seen = []
        switch.attach("a", seen.append, Link(sim))
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        switch.inject(Packet(FLOW))
        sim.run()
        # Forwarding still happens; only the ground-truth log is skipped.
        assert len(seen) == 1
        assert switch.forward_log == []
        assert switch.forwarded == 1

    def test_forward_log_on_by_default(self):
        sim = Simulator()
        switch = Switch(sim)
        switch.attach("a", lambda p: None, Link(sim))
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        switch.inject(Packet(FLOW))
        sim.run()
        assert len(switch.forward_log) == 1
