"""Deeper guarantee coverage: cross-flow ordering, jitter, share scopes.

§5.1.2: the order-preserving property "applies within one direction of
a flow..., across both directions of a flow..., and, for moves
including multi-flow state, across flows (e.g. process an FTP get
command before the SYN for the new transfer connection)."
"""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import (
    LOCAL_NET_FILTER,
    build_multi_instance_deployment,
    check_loss_free,
    check_order_preserving,
    run_move_experiment,
)
from repro.net.link import Link
from repro.nf import Scope
from repro.nfs.monitor import AssetMonitor
from repro.sim.rng import derive_rng
from repro.traffic import TraceConfig, TraceReplayer, build_university_cloud_trace
from tests.conftest import make_packet


class TestCrossFlowOrdering:
    def test_op_move_with_multiflow_scope_preserves_global_order(self):
        """Across-flow ordering (the FTP-control/data case): with
        multi-flow state in the move, processing order across *all*
        matching flows equals switch forwarding order."""
        result = run_move_experiment(
            "op", scope="per+multi", n_flows=30, rate_pps=4000.0, seed=11
        )
        assert result.report.aborted is None
        dep = result.deployment
        ok, detail = check_order_preserving(
            dep.switch,
            [dep.nfs["inst1"], dep.nfs["inst2"]],
            result.replayer.injected,
            per_flow=False,
        )
        assert ok, detail

    def test_lf_move_does_not_guarantee_global_order(self):
        """Sanity: plain LF reorders across flows on adversarial seeds
        (this is exactly why OP exists). At least one of several seeds
        must show a global-order violation."""
        violations = 0
        for seed in (0, 1, 2, 3):
            result = run_move_experiment(
                "lf", n_flows=40, rate_pps=6000.0, seed=seed
            )
            dep = result.deployment
            ok, _ = check_order_preserving(
                dep.switch,
                [dep.nfs["inst1"], dep.nfs["inst2"]],
                result.replayer.injected,
                per_flow=False,
            )
            if not ok:
                violations += 1
        assert violations > 0


class TestJitterRobustness:
    def _jittery_deployment(self, seed):
        dep, (a, b) = build_multi_instance_deployment(2)
        # Replace the NF links with jittery ones: packets may reorder on
        # the wire between switch and NF. (The paper's OP proof assumes
        # in-order sw→NF paths, so only loss-freedom is asserted here.)
        rng = derive_rng(seed, "jitter")
        for nf in (a, b):
            dep.switch._ports[nf.name].link = Link(
                dep.sim, latency_ms=0.2, jitter_ms=0.4, rng=rng
            )
        return dep, a, b

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lossfree_move_survives_wire_jitter(self, seed):
        dep, a, b = self._jittery_deployment(seed)
        trace = build_university_cloud_trace(
            TraceConfig(seed=seed, n_flows=40, data_packets=15)
        )
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 4000.0)
        replayer.start()
        holder = {}
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(op=dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf")),
        )
        dep.sim.run()
        assert holder["op"].done.value.packets_dropped == 0
        ok, detail = check_loss_free(dep.switch, [a, b])
        assert ok, detail


class TestShareScopes:
    def _split(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        dep.switch.table.remove(Filter.wildcard())
        dep.set_default_route("inst1")
        dep.switch.table.install(
            Filter({"nw_src": "10.0.2.0/24"}, symmetric=True), 500,
            ["inst2"], 0.0,
        )
        return dep, a, b

    def test_share_perflow_scope(self):
        dep, a, b = self._split()
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="per",
            consistency="strong", group_by="flow",
        )
        dep.sim.run()
        flow = FiveTuple("10.0.1.5", 1111, "203.0.113.9", 80)
        for index in range(3):
            dep.inject(make_packet(flow, flags=("ACK",), seq=index))
        dep.sim.run()
        assert share.packets_serialized == 3
        # inst2 received per-flow copies of inst1's connection record.
        assert b.conn_for(flow) is not None
        assert b.conn_for(flow).packets == a.conn_for(flow).packets
        share.stop()
        dep.sim.run()

    def test_share_group_by_all_single_queue(self):
        dep, a, b = self._split()
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi",
            consistency="strong", group_by="all",
        )
        dep.sim.run()
        flows = [
            FiveTuple("10.0.1.5", 1000 + i, "203.0.113.%d" % (i + 1), 80)
            for i in range(4)
        ]
        for flow in flows:
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        # One serialization domain: strictly increasing completion times.
        assert share.packets_serialized == 4
        assert share.latency_samples == sorted(share.latency_samples)
        share.stop()
        dep.sim.run()

    def test_share_survives_restart_of_traffic(self):
        dep, a, b = self._split()
        share = dep.controller.share(
            ["inst1", "inst2"], Filter.wildcard(), scope="multi",
            consistency="strong",
        )
        dep.sim.run()
        flow = FiveTuple("10.0.1.5", 1111, "203.0.113.9", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        first_round = share.packets_serialized
        # A quiet period, then more traffic: the worker must re-arm.
        dep.sim.run(until=dep.sim.now + 500.0)
        dep.inject(make_packet(flow, payload="later"))
        dep.sim.run()
        assert share.packets_serialized == first_round + 1
        share.stop()
        dep.sim.run()
