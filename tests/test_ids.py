"""Tests for the Bro-like IDS: analyzers, detections, state handlers."""

import hashlib

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.nf import Scope
from repro.nfs.ids import (
    Connection,
    HttpAnalyzer,
    IntrusionDetector,
    ScanRecord,
    SignatureDB,
    TcpReassembler,
    is_outdated_browser,
)
from repro.traffic import (
    MALWARE_BODY,
    OUTDATED_AGENT,
    http_exchange,
    malware_signatures,
    port_scan,
)
from tests.conftest import make_packet


class TestTcpReassembler:
    def test_in_order_delivery(self):
        out = []
        reasm = TcpReassembler(out.append)
        reasm.segment(0, "abc")
        reasm.segment(3, "def")
        assert "".join(out) == "abcdef"
        assert reasm.gaps == 0

    def test_out_of_order_buffered_then_delivered(self):
        out = []
        reasm = TcpReassembler(out.append)
        reasm.segment(3, "def")
        assert out == []
        assert reasm.has_hole()
        reasm.segment(0, "abc")
        assert "".join(out) == "abcdef"
        assert not reasm.has_hole()

    def test_duplicate_segment_ignored(self):
        out = []
        reasm = TcpReassembler(out.append)
        reasm.segment(0, "abc")
        reasm.segment(0, "abc")
        assert "".join(out) == "abc"

    def test_partial_overlap_trimmed(self):
        out = []
        reasm = TcpReassembler(out.append)
        reasm.segment(0, "abcd")
        reasm.segment(2, "cdef")
        assert "".join(out) == "abcdef"

    def test_skip_gap_records_and_resumes(self):
        out = []
        reasm = TcpReassembler(out.append)
        reasm.segment(0, "abc")
        reasm.segment(6, "ghi")
        assert reasm.skip_gap()
        assert reasm.gaps == 1
        assert "".join(out) == "abcghi"

    def test_skip_gap_without_pending_is_noop(self):
        reasm = TcpReassembler()
        assert not reasm.skip_gap()
        assert reasm.gaps == 0

    def test_serialization_roundtrip(self):
        reasm = TcpReassembler()
        reasm.segment(0, "abc")
        reasm.segment(10, "xyz")
        clone = TcpReassembler.from_dict(reasm.to_dict())
        assert clone.next_seq == 3
        assert clone.pending == {10: "xyz"}
        out = []
        clone.set_sink(out.append)
        for seq in range(3, 10):
            clone.segment(seq, "-")
        assert "".join(out).endswith("xyz")


class TestHttpAnalyzer:
    def make_request(self, ua="Mozilla/5.0"):
        return (
            "GET /x HTTP/1.1\r\nHost: h.example\r\nUser-Agent: %s\r\n\r\n" % ua
        )

    def test_request_parsed(self):
        requests = []
        analyzer = HttpAnalyzer(on_request=requests.append)
        analyzer.request_data(self.make_request())
        assert len(requests) == 1
        assert requests[0].url == "/x"
        assert requests[0].host == "h.example"

    def test_request_split_across_segments(self):
        requests = []
        analyzer = HttpAnalyzer(on_request=requests.append)
        data = self.make_request()
        analyzer.request_data(data[:10])
        analyzer.request_data(data[10:])
        assert len(requests) == 1

    def test_reply_body_hashed(self):
        bodies = []
        analyzer = HttpAnalyzer(on_body=lambda d, s: bodies.append((d, s)))
        body = "hello-body"
        analyzer.reply_data(
            "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        digest = hashlib.md5(body.encode()).hexdigest()
        assert bodies == [(digest, len(body))]

    def test_reply_body_chunked_delivery(self):
        bodies = []
        analyzer = HttpAnalyzer(on_body=lambda d, s: bodies.append(s))
        body = "A" * 1000
        stream = "HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n" + body
        for i in range(0, len(stream), 100):
            analyzer.reply_data(stream[i : i + 100])
        assert bodies == [1000]

    def test_zero_length_body_completes(self):
        bodies = []
        analyzer = HttpAnalyzer(on_body=lambda d, s: bodies.append(s))
        analyzer.reply_data("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n")
        assert bodies == [0]

    def test_status_codes_recorded(self):
        analyzer = HttpAnalyzer()
        analyzer.reply_data("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")
        assert analyzer.status_codes == [404]

    def test_serialization_mid_body(self):
        analyzer = HttpAnalyzer()
        analyzer.reply_data("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc")
        clone = HttpAnalyzer.from_dict(analyzer.to_dict())
        bodies = []
        clone.on_body = lambda d, s: bodies.append(s)
        clone.reply_data("defghij")
        assert bodies == [10]


class TestConnectionStateMachine:
    def test_handshake_states(self, sim, flow):
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 0.0)
        assert conn.state == "S0"
        conn.on_packet(make_packet(flow.reversed(), flags=("SYN", "ACK")), 1.0)
        assert conn.state == "S1"
        conn.on_packet(make_packet(flow, flags=("ACK",), payload="x"), 2.0)
        assert conn.state == "EST"

    def test_fin_both_directions_closes(self, flow):
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 0.0)
        conn.on_packet(make_packet(flow, flags=("FIN", "ACK")), 1.0)
        assert not conn.closed
        conn.on_packet(make_packet(flow.reversed(), flags=("FIN", "ACK")), 2.0)
        assert conn.closed and conn.state == "SF"

    def test_rst_closes_immediately(self, flow):
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("RST",)), 0.0)
        assert conn.closed and conn.state == "RST"

    def test_syn_inside_connection_weird(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, payload="data"), 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 1.0, weirds.append)
        assert weirds == ["SYN_inside_connection"]

    def test_log_entry_abnormal_when_unclosed_with_data(self, flow):
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, payload="data"), 0.0)
        assert conn.log_entry(5.0)["abnormal"]
        conn.moved = True
        assert not conn.log_entry(5.0)["abnormal"]

    def test_serialization_roundtrip_preserves_counters(self, flow):
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 0.0)
        conn.on_packet(make_packet(flow.reversed(), payload="yo"), 1.0)
        clone = Connection.from_dict(conn.to_dict())
        assert clone.orig_packets == 1
        assert clone.resp_packets == 1
        assert clone.history == conn.history


class TestScanRecord:
    def test_attempts_counted_distinctly(self):
        record = ScanRecord("1.2.3.4", 0.0)
        record.attempt("10.0.0.1", 80, 0.0)
        record.attempt("10.0.0.1", 80, 1.0)
        record.attempt("10.0.0.2", 80, 2.0)
        assert record.attempt_count == 2

    def test_alert_threshold(self):
        record = ScanRecord("1.2.3.4", 0.0)
        for i in range(20):
            record.attempt("10.0.0.%d" % i, 22, float(i))
        assert record.should_alert(20)
        record.alerted = True
        assert not record.should_alert(20)

    def test_merge_unions_targets(self):
        a = ScanRecord("1.2.3.4", 0.0)
        b = ScanRecord("1.2.3.4", 1.0)
        a.attempt("10.0.0.1", 22, 0.0)
        b.attempt("10.0.0.2", 22, 1.0)
        a.merge_from(b.to_dict())
        assert a.attempt_count == 2
        a.merge_from(b.to_dict())  # idempotent
        assert a.attempt_count == 2


def drive_flow(sim, ids, flow_blueprint):
    for blueprint in flow_blueprint.packets:
        ids.receive(blueprint.build(sim.now))
    sim.run()


class TestIntrusionDetector:
    def test_malware_detected_on_complete_reply(self, sim):
        ids = IntrusionDetector(sim, "bro", SignatureDB(malware_signatures()))
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body=MALWARE_BODY)
        drive_flow(sim, ids, flow)
        assert len(ids.alerts_of("malware")) == 1

    def test_benign_reply_no_alert(self, sim):
        ids = IntrusionDetector(sim, "bro", SignatureDB(malware_signatures()))
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5", reply_body="benign")
        drive_flow(sim, ids, flow)
        assert ids.alerts_of("malware") == []

    def test_malware_missed_when_packet_lost(self, sim):
        ids = IntrusionDetector(sim, "bro", SignatureDB(malware_signatures()))
        flow = http_exchange(
            "10.0.1.2", 1234, "203.0.113.5", reply_body=MALWARE_BODY * 4,
            reply_chunk=200,
        )
        packets = [b.build(0.0) for b in flow.packets]
        dropped = [p for p in packets if not (p.seq == 200 and p.payload and
                                              p.five_tuple.src_ip == "203.0.113.5")]
        assert len(dropped) == len(packets) - 1
        for packet in dropped:
            ids.receive(packet)
        sim.run()
        assert ids.alerts_of("malware") == []

    def test_outdated_browser_alert(self, sim):
        ids = IntrusionDetector(sim, "bro")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             user_agent=OUTDATED_AGENT, reply_body="x")
        drive_flow(sim, ids, flow)
        alerts = ids.alerts_of("outdated_browser")
        assert len(alerts) == 1
        assert alerts[0].flow is not None

    def test_port_scan_alert(self, sim):
        ids = IntrusionDetector(sim, "bro", scan_threshold=10)
        probes = port_scan("198.51.100.9", ["10.0.0.%d" % i for i in range(5)],
                           ports=(22, 80))
        for probe in probes:
            drive_flow(sim, ids, probe)
        assert len(ids.alerts_of("port_scan")) == 1

    def test_weird_alert_on_reordered_syn(self, sim, flow):
        ids = IntrusionDetector(sim, "bro")
        ids.receive(make_packet(flow, flags=("ACK",), payload="data"))
        ids.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        assert len(ids.alerts_of("weird:SYN_inside_connection")) == 1

    def test_conn_log_on_close(self, sim):
        ids = IntrusionDetector(sim, "bro")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5", reply_body="x",
                             close=True)
        drive_flow(sim, ids, flow)
        assert len(ids.conn_log) == 1
        assert ids.conn_log[0]["state"] == "SF"
        assert not ids.conn_log[0]["abnormal"]

    def test_abrupt_termination_logged_as_incorrect(self, sim):
        ids = IntrusionDetector(sim, "bro")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5", reply_body="x" * 2000,
                             close=False)
        drive_flow(sim, ids, flow)
        ids.finalize_logs()
        assert len(ids.incorrect_log_entries()) == 1

    def test_moved_flag_suppresses_incorrect_entry(self, sim):
        ids = IntrusionDetector(sim, "bro")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5", reply_body="x" * 2000,
                             close=False)
        drive_flow(sim, ids, flow)
        for key in list(ids.conns):
            ids.delete_by_flowid(Scope.PERFLOW, key)
        ids.finalize_logs()
        assert ids.incorrect_log_entries() == []
        assert ids.conn_count() == 0

    def test_state_move_resumes_detection(self, sim):
        """The headline behaviour: move mid-flow, malware still caught."""
        signatures = SignatureDB(malware_signatures())
        src = IntrusionDetector(sim, "src", signatures)
        dst = IntrusionDetector(sim, "dst", signatures)
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body=MALWARE_BODY, reply_chunk=100)
        packets = [b.build(0.0) for b in flow.packets]
        half = len(packets) // 2
        for packet in packets[:half]:
            src.receive(packet)
        sim.run()
        keys = src.state_keys(Scope.PERFLOW, Filter.wildcard())
        for key in keys:
            chunk = src.export_chunk(Scope.PERFLOW, key)
            src.delete_by_flowid(Scope.PERFLOW, key)
            dst.import_chunk(chunk)
        for packet in packets[half:]:
            dst.receive(packet)
        sim.run()
        assert len(dst.alerts_of("malware")) == 1
        assert src.alerts_of("malware") == []

    def test_multiflow_export_respects_ip_relevance(self, sim):
        ids = IntrusionDetector(sim, "bro")
        probes = port_scan("198.51.100.9", ["10.0.0.1"], ports=(22,))
        for probe in probes:
            drive_flow(sim, ids, probe)
        # tp_dst is irrelevant for host counters: still matches on IP.
        keys = ids.state_keys(
            Scope.MULTIFLOW,
            Filter({"nw_src": "198.51.100.0/24", "tp_dst": 9999}),
        )
        assert FlowId.for_host("198.51.100.9") in keys

    def test_allflows_stats_merge(self, sim, flow):
        a = IntrusionDetector(sim, "a")
        b = IntrusionDetector(sim, "b")
        a.receive(make_packet(flow))
        b.receive(make_packet(flow))
        sim.run()
        chunk = a.export_chunk(Scope.ALLFLOWS, "stats")
        b.import_chunk(chunk)
        assert b.stats["packets"] == 2

    def test_state_size_grows_with_traffic(self, sim):
        ids = IntrusionDetector(sim, "bro")
        empty_size = ids.state_size_bytes()
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body="y" * 5000)
        drive_flow(sim, ids, flow)
        assert ids.state_size_bytes() > empty_size

    def test_is_outdated_browser(self):
        assert is_outdated_browser("Mozilla/4.0 (compatible; MSIE 6.0)")
        assert not is_outdated_browser("Mozilla/5.0 (X11; Linux)")


class TestConnLogRendering:
    def test_tsv_output(self, sim, tmp_path):
        from repro.nfs.ids.logs import write_conn_log

        ids = IntrusionDetector(sim, "bro")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body="x", close=True)
        drive_flow(sim, ids, flow)
        path = str(tmp_path / "conn.log")
        count = write_conn_log(ids, path)
        assert count == 1
        text = open(path).read()
        assert text.startswith("#separator")
        assert "#fields\tts\tid" in text
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert len(lines) == 1
        record = lines[0].split("\t")
        assert record[2] == "tcp"
        assert record[4] == "SF"
        assert record[-1] == "F"  # not abnormal

    def test_abnormal_flag_rendered(self, sim, tmp_path):
        from repro.nfs.ids.logs import render_conn_log

        ids = IntrusionDetector(sim, "bro")
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body="x" * 500, close=False)
        drive_flow(sim, ids, flow)
        ids.finalize_logs()
        text = render_conn_log(ids.conn_log)
        data_lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert data_lines[0].endswith("T")  # abnormal
