"""Tests for the FTP analyzer and §5.1.2's cross-flow ordering example."""

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.harness import build_multi_instance_deployment
from repro.nf import Scope
from repro.nfs.ids import IntrusionDetector
from repro.nfs.ids.ftp import FtpControlAnalyzer, FtpExpectation
from repro.traffic import TraceReplayer, ftp_session
from tests.conftest import make_packet


class TestFtpControlAnalyzer:
    def test_retr_parsed(self):
        seen = []
        analyzer = FtpControlAnalyzer(on_retr=seen.append)
        analyzer.feed("USER anon\r\nRETR big.iso\r\n")
        assert seen == ["big.iso"]
        assert analyzer.commands == ["USER anon", "RETR big.iso"]

    def test_command_split_across_segments(self):
        seen = []
        analyzer = FtpControlAnalyzer(on_retr=seen.append)
        analyzer.feed("RETR par")
        analyzer.feed("tial.bin\r\n")
        assert seen == ["partial.bin"]

    def test_serialization_roundtrip(self):
        analyzer = FtpControlAnalyzer()
        analyzer.feed("RETR a\r\nRET")
        clone = FtpControlAnalyzer.from_dict(analyzer.to_dict())
        seen = []
        clone.on_retr = seen.append
        clone.feed("R b\r\n")
        assert seen == ["b"]
        assert clone.retrievals == ["a", "b"]


class TestFtpExpectation:
    def test_expect_consume_fifo(self):
        record = FtpExpectation("10.0.1.2", "203.0.113.5", 0.0)
        record.expect("a")
        record.expect("b")
        assert record.consume() == "a"
        assert record.consume() == "b"
        assert record.consume() is None
        assert record.consumed == 2

    def test_merge_idempotent(self):
        record = FtpExpectation("10.0.1.2", "203.0.113.5", 0.0)
        record.expect("a")
        snapshot = record.to_dict()
        record.merge_from(snapshot)
        assert record.pending == ["a"]


def drive(ids, blueprints, sim):
    for blueprint in blueprints:
        ids.receive(blueprint.build(sim.now))
    sim.run()


class TestFtpInIds:
    def test_ordered_session_is_clean(self, sim):
        ids = IntrusionDetector(sim, "bro")
        control, data = ftp_session("10.0.1.2", "203.0.113.5")
        drive(ids, control.packets + data.packets, sim)
        assert ids.alerts_of("weird:ftp_data_without_command") == []
        assert len(ids.ftp_expectations) == 1

    def test_data_before_command_raises_weird(self, sim):
        ids = IntrusionDetector(sim, "bro")
        control, data = ftp_session("10.0.1.2", "203.0.113.5")
        drive(ids, data.packets + control.packets, sim)  # reordered!
        assert len(ids.alerts_of("weird:ftp_data_without_command")) == 1

    def test_expectation_is_exported_as_multiflow(self, sim):
        ids = IntrusionDetector(sim, "bro")
        control, _data = ftp_session("10.0.1.2", "203.0.113.5")
        drive(ids, control.packets, sim)
        keys = ids.state_keys(
            Scope.MULTIFLOW, Filter({"nw_src": "10.0.1.2"}, symmetric=True)
        )
        chunks = [ids.export_chunk(Scope.MULTIFLOW, key) for key in keys]
        assert any(c.data.get("kind") == "ftp" for c in chunks)

    def test_expectation_moves_with_state(self, sim):
        """The RETR is seen at instance A; the data SYN arrives at B
        after a per+multi move — no false alarm."""
        a = IntrusionDetector(sim, "a")
        b = IntrusionDetector(sim, "b")
        control, data = ftp_session("10.0.1.2", "203.0.113.5")
        drive(a, control.packets, sim)
        for scope in (Scope.PERFLOW, Scope.MULTIFLOW):
            for key in a.state_keys(scope, Filter.wildcard()):
                chunk = a.export_chunk(scope, key)
                a.delete_by_flowid(scope, key)
                b.import_chunk(chunk)
        drive(b, data.packets, sim)
        assert b.alerts_of("weird:ftp_data_without_command") == []

    def test_missing_expectation_after_stateless_reroute(self, sim):
        """Without the multi-flow move, the data SYN at B is weird."""
        a = IntrusionDetector(sim, "a")
        b = IntrusionDetector(sim, "b")
        control, data = ftp_session("10.0.1.2", "203.0.113.5")
        drive(a, control.packets, sim)
        drive(b, data.packets, sim)
        assert len(b.alerts_of("weird:ftp_data_without_command")) == 1


class TestFtpAcrossMove:
    def test_op_move_with_multiflow_keeps_ftp_clean(self):
        """End-to-end §5.1.2: move between RETR and data SYN, with
        per+multi scope and the order-preserving guarantee — no weird."""
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n)
        )
        control, data = ftp_session("10.0.1.2", "203.0.113.5")
        packets = control.packets + data.packets
        replayer = TraceReplayer(dep.sim, dep.inject, packets, 500.0)
        replayer.start()
        # Move right between the RETR (packet 4, t=6 ms) and the data
        # SYN (packet 5, t=8 ms).
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        dep.sim.schedule(
            7.0,
            lambda: dep.controller.move("inst1", "inst2", flt,
                                        scope="per+multi", guarantee="op"),
        )
        dep.sim.run()
        weirds = (a.alerts_of("weird:ftp_data_without_command")
                  + b.alerts_of("weird:ftp_data_without_command"))
        assert weirds == []
        # The data connection was recognized at whichever instance saw it.
        consumed = sum(
            record.consumed
            for ids in (a, b)
            for record in ids.ftp_expectations.values()
        )
        assert consumed == 1
