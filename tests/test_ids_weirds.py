"""Tests for the extended weird-activity catalog and its control-plane
significance: safe moves are weird-silent, unsafe reroutes are not."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import LOCAL_NET_FILTER, build_multi_instance_deployment
from repro.nfs.ids import Connection, IntrusionDetector
from repro.traffic import TraceConfig, TraceReplayer, build_university_cloud_trace
from tests.conftest import make_packet


class TestWeirdCatalog:
    def test_data_before_established(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, payload="mid-stream"), 0.0,
                       weirds.append)
        assert weirds == ["data_before_established"]

    def test_data_after_handshake_is_clean(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 0.0, weirds.append)
        conn.on_packet(make_packet(flow.reversed(), flags=("SYN", "ACK")),
                       1.0, weirds.append)
        conn.on_packet(make_packet(flow, payload="fine"), 2.0, weirds.append)
        assert weirds == []

    def test_data_before_established_fires_once(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, payload="a"), 0.0, weirds.append)
        conn.on_packet(make_packet(flow, payload="b", seq=1), 1.0,
                       weirds.append)
        assert weirds.count("data_before_established") == 1

    def test_rst_with_data(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 0.0, weirds.append)
        conn.on_packet(make_packet(flow, flags=("RST",), payload="oops"),
                       1.0, weirds.append)
        assert "RST_with_data" in weirds

    def test_spontaneous_fin(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("FIN", "ACK")), 0.0,
                       weirds.append)
        assert weirds == ["spontaneous_FIN"]

    def test_fin_after_data_is_clean(self, flow):
        weirds = []
        conn = Connection(flow, 0.0)
        conn.on_packet(make_packet(flow, flags=("SYN",)), 0.0, weirds.append)
        conn.on_packet(make_packet(flow, payload="data"), 1.0, weirds.append)
        conn.on_packet(make_packet(flow, flags=("FIN", "ACK")), 2.0,
                       weirds.append)
        assert weirds == []


def weird_count(ids, name):
    return len(ids.alerts_of("weird:%s" % name))


class TestWeirdsAsMoveSafetySignal:
    def _run(self, act):
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n)
        )
        trace = build_university_cloud_trace(
            TraceConfig(seed=13, n_flows=40, data_packets=20)
        )
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        dep.sim.schedule(replayer.duration_ms / 2, act, dep)
        dep.sim.run()
        return a, b

    def test_lossfree_move_is_weird_silent(self):
        def act(dep):
            dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                guarantee="lf")

        a, b = self._run(act)
        assert weird_count(b, "data_before_established") == 0
        assert weird_count(b, "SYN_inside_connection") == 0

    def test_stateless_reroute_storms_weirds(self):
        def act(dep):
            dep.switch.table.install(LOCAL_NET_FILTER, 500, ["inst2"],
                                     dep.sim.now)

        a, b = self._run(act)
        # Mid-stream flows arrive at inst2 with no state: every active
        # flow announces itself as weird.
        assert weird_count(b, "data_before_established") > 10
