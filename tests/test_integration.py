"""Cross-module integration scenarios.

These exercise the paper's end-to-end stories: elastic scale-out and
scale-in with state merging, the Squid rebalance of Table 1, RE-decoder
order sensitivity, and repeated operations on one deployment.
"""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import (
    build_multi_instance_deployment,
    check_loss_free,
)
from repro.nf import Scope
from repro.nfs.ids import IntrusionDetector, SignatureDB
from repro.nfs.monitor import AssetMonitor
from repro.nfs.proxy import CachingProxy, pull_payload, request_payload
from repro.nfs.redup import RE_TOKEN_HEADER, REDecoder, fingerprint
from repro.traffic import (
    TraceConfig,
    TraceReplayer,
    build_university_cloud_trace,
    malware_signatures,
)
from tests.conftest import make_packet


class TestElasticScaling:
    def test_scale_out_then_scale_in_merges_counters(self):
        """Move half the flows out, then merge everything back (§2.1)."""
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n, scan_threshold=10)
        )
        scanner = "10.0.1.9"
        # Scanner probes 6 targets while on inst1.
        for i in range(6):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        # Scale out: move scanner's flows AND its counters to inst2.
        flt = Filter({"nw_src": scanner}, symmetric=True)
        op = dep.controller.move("inst1", "inst2", flt, scope="per+multi",
                                 guarantee="lf")
        dep.sim.run()
        assert op.done.triggered
        # 3 more probes at inst2.
        for i in range(6, 9):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        # Scale in: move back; counters must merge (6 ∪ 3 = 9 targets).
        back = dep.controller.move("inst2", "inst1", flt, scope="per+multi",
                                   guarantee="lf")
        dep.sim.run()
        assert back.done.triggered
        for i in range(9, 11):
            flow = FiveTuple(scanner, 40000 + i, "203.0.113.%d" % (i + 1), 22)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        assert len(a.alerts_of("port_scan")) == 1

    def test_sequential_moves_on_same_deployment(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        trace = build_university_cloud_trace(TraceConfig(seed=11, n_flows=30))
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        ops = []
        dep.sim.schedule(
            replayer.duration_ms * 0.3,
            lambda: ops.append(dep.controller.move("inst1", "inst2", flt,
                                                   guarantee="lf")),
        )
        dep.sim.schedule(
            replayer.duration_ms * 0.7,
            lambda: ops.append(dep.controller.move("inst2", "inst1", flt,
                                                   guarantee="lf")),
        )
        dep.sim.run()
        assert all(op.done.triggered for op in ops)
        ok, detail = check_loss_free(dep.switch, [a, b])
        assert ok, detail
        # All state ended up back at inst1.
        assert b.conn_count() == 0


class TestSquidRebalance:
    """The Table 1 scenario in miniature."""

    def _loaded_proxies(self):
        dep, (p1, p2) = build_multi_instance_deployment(
            2, nf_factory=CachingProxy
        )
        client2 = "10.0.2.2"
        # Client 1 and client 2 each fetch objects through proxy 1;
        # client 2 has one transfer still in progress.
        for i, url in enumerate(("/a", "/b")):
            flow = FiveTuple("10.0.1.1", 5000 + i, "203.0.113.5", 80)
            dep.inject(make_packet(flow, payload=request_payload(url, 100_000)))
        in_progress = FiveTuple(client2, 6000, "203.0.113.5", 80)
        dep.inject(make_packet(in_progress,
                               payload=request_payload("/c", 500_000)))
        dep.sim.run()
        return dep, p1, p2, client2, in_progress

    def test_ignore_multiflow_crashes_new_instance(self):
        dep, p1, p2, client2, in_progress = self._loaded_proxies()
        # Move only per-flow state, then reroute client2: the in-progress
        # object is absent at p2.
        flt = Filter({"nw_src": client2}, symmetric=True)
        op = dep.controller.move("inst1", "inst2", flt, scope="per",
                                 guarantee="lf")
        dep.sim.run()
        dep.inject(make_packet(in_progress, payload=pull_payload()))
        dep.sim.run()
        assert p2.failed

    def test_copy_client_entries_avoids_crash(self):
        dep, p1, p2, client2, in_progress = self._loaded_proxies()
        flt = Filter({"nw_src": client2}, symmetric=True)
        copy_op = dep.controller.copy("inst1", "inst2",
                                      Filter({"nw_src": client2}), "multi")
        dep.sim.run()
        op = dep.controller.move("inst1", "inst2", flt, scope="per",
                                 guarantee="lf")
        dep.sim.run()
        dep.inject(make_packet(in_progress, payload=pull_payload()))
        dep.sim.run()
        assert not p2.failed
        assert "/c" in p2.cache
        assert "/a" not in p2.cache  # only the client's objects came along

    def test_copy_all_preserves_hit_ratio(self):
        dep, p1, p2, client2, in_progress = self._loaded_proxies()
        copy_op = dep.controller.copy("inst1", "inst2", Filter.wildcard(),
                                      "multi")
        dep.sim.run()
        assert set(p2.cache) == set(p1.cache)
        # A new request at p2 for a previously cached object hits.
        flow = FiveTuple(client2, 6001, "203.0.113.5", 80)
        p2.receive(make_packet(flow, payload=request_payload("/a", 100_000)))
        dep.sim.run()
        assert p2.stats["hits"] == 1


class TestREOrderSensitivity:
    def test_decoder_desync_without_order_preservation(self, sim):
        """An encoded packet overtaking its reference data causes a silent
        drop; in order, everything decodes (§5.1.2's motivation)."""
        payload = "shared-content-" + "z" * 50
        token = fingerprint(payload)

        def raw(flow_port):
            return make_packet(
                FiveTuple("10.0.0.1", flow_port, "10.0.0.2", 9000),
                payload=payload,
            )

        def encoded(flow_port):
            packet = make_packet(
                FiveTuple("10.0.0.1", flow_port, "10.0.0.2", 9000)
            )
            packet.extra_headers[RE_TOKEN_HEADER] = token
            return packet

        in_order = REDecoder(sim, "ordered")
        in_order.receive(raw(1))
        in_order.receive(encoded(1))
        reordered = REDecoder(sim, "reordered")
        reordered.receive(encoded(2))
        reordered.receive(raw(2))
        sim.run()
        assert in_order.desync_drops == 0
        assert in_order.decoded_packets == 1
        assert reordered.desync_drops == 1


class TestMalwareAcrossMove:
    def test_lossfree_move_preserves_malware_detection(self):
        """§2.1's headline: mid-flow LF move, the malware is still caught."""
        from repro.traffic import MALWARE_BODY, http_exchange

        signatures = SignatureDB(malware_signatures())
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n, signatures)
        )
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body=MALWARE_BODY, reply_chunk=60)
        replayer = TraceReplayer(dep.sim, dep.inject, flow.packets, 1000.0)
        replayer.start()
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: dep.controller.move("inst1", "inst2", flt, guarantee="lf"),
        )
        dep.sim.run()
        assert len(b.alerts_of("malware")) == 1

    def test_ng_move_can_miss_malware(self):
        """Packets dropped by an unsafe move leave a content gap."""
        from repro.traffic import MALWARE_BODY, http_exchange

        signatures = SignatureDB(malware_signatures())
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n, signatures)
        )
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             reply_body=MALWARE_BODY, reply_chunk=30)
        replayer = TraceReplayer(dep.sim, dep.inject, flow.packets, 5000.0)
        replayer.start()
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: dep.controller.move("inst1", "inst2", flt, guarantee="ng"),
        )
        dep.sim.run()
        total_alerts = len(a.alerts_of("malware")) + len(b.alerts_of("malware"))
        assert total_alerts == 0
