"""Tests for the control-plane journal and automatic failover."""

import pytest

from repro.apps import FastFailureRecovery
from repro.controller.journal import Journal
from repro.flowspace import Filter, FiveTuple
from repro.harness import LOCAL_NET_FILTER, build_multi_instance_deployment
from repro.nfs.ids import IntrusionDetector
from tests.conftest import make_packet


def feed(dep, count=5):
    for index in range(count):
        flow = FiveTuple("10.0.1.%d" % (index + 1), 30000 + index,
                         "203.0.113.5", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


class TestJournal:
    def test_records_operations_and_events(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        journal = Journal.attach(dep.controller)
        feed(dep)
        op = dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                 guarantee="lf")
        dep.sim.run()
        assert op.done.triggered
        kinds = {entry.kind for entry in journal.entries}
        assert "op-start" in kinds
        assert "op-done" in kinds
        starts = journal.entries_of("op-start")
        assert starts[0].detail == "move"
        done = journal.entries_of("op-done")[0]
        assert "move[loss-free]" in done.data["summary"]

    def test_records_nf_events_with_uids(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        journal = Journal.attach(dep.controller)
        feed(dep)
        dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                            guarantee="lf")
        # Traffic during the move produces events.
        dep.sim.schedule(5.0, lambda: feed(dep, 3))
        dep.sim.run()
        events = journal.entries_of("nf-event")
        assert events
        assert all("uid" in entry.data for entry in events)

    def test_render_and_queries(self):
        dep, _ = build_multi_instance_deployment(2)
        journal = Journal.attach(dep.controller)
        feed(dep)
        dep.controller.copy("inst1", "inst2", Filter.wildcard(), "per")
        dep.sim.run()
        text = journal.render()
        assert "op-start" in text
        assert len(journal.between(0.0, dep.sim.now + 1.0)) == len(journal)

    def test_behaviour_unchanged_by_journaling(self):
        plain_dep, (pa, pb) = build_multi_instance_deployment(2)
        feed(plain_dep)
        plain = plain_dep.controller.move("inst1", "inst2",
                                          LOCAL_NET_FILTER, guarantee="lf")
        plain_dep.sim.run()

        from repro.net.packet import reset_uid_counter

        reset_uid_counter()
        journaled_dep, (ja, jb) = build_multi_instance_deployment(2)
        Journal.attach(journaled_dep.controller)
        feed(journaled_dep)
        journaled = journaled_dep.controller.move(
            "inst1", "inst2", LOCAL_NET_FILTER, guarantee="lf"
        )
        journaled_dep.sim.run()
        assert (plain.done.value.duration_ms
                == journaled.done.value.duration_ms)


class TestAutoFailover:
    def test_watch_detects_failure_and_redirects(self):
        dep, (norm, stby) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n)
        )
        app = FastFailureRecovery(dep.controller, health_poll_ms=20.0)
        app.init_standby("inst1", "inst2")
        dep.sim.run()
        feed(dep, 3)
        app.watch()  # the health loop keeps the queue alive: use run(until=...)
        # The primary dies; nobody calls recover() manually.
        def kill():
            norm.failed = True
            norm.failure_reason = "injected"
        dep.sim.schedule(50.0, kill)
        dep.sim.run(until=200.0)
        assert app.recoveries == 1
        # New traffic lands at the standby.
        flow = FiveTuple("10.0.1.9", 40000, "203.0.113.5", 80)
        dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run(until=300.0)
        assert stby.packets_processed >= 1
        app.stop()
        dep.sim.run(until=400.0)

    def test_recovery_fires_once(self):
        dep, (norm, stby) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: IntrusionDetector(s, n)
        )
        app = FastFailureRecovery(dep.controller, health_poll_ms=10.0)
        app.init_standby("inst1", "inst2")
        dep.sim.run()
        app.watch()
        norm.failed = True
        dep.sim.run(until=200.0)
        assert app.recoveries == 1
        app.stop()
        dep.sim.run(until=300.0)
