"""Tests for the L4 load-balancer NF and its behaviour under moves."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import LOCAL_NET_FILTER, build_multi_instance_deployment
from repro.nf import Scope
from repro.nfs.lb import BackendStats, LoadBalancer
from tests.conftest import make_packet


BACKENDS = ("192.168.1.1", "192.168.1.2", "192.168.1.3")


def flow(i, client="10.0.1.2"):
    return FiveTuple(client, 40000 + i, "203.0.113.80", 80)


class TestBalancing:
    def test_round_robin_over_backends(self, sim):
        lb = LoadBalancer(sim, "lb", backends=BACKENDS)
        chosen = []
        for i in range(6):
            lb.receive(make_packet(flow(i), flags=("SYN",)))
        sim.run()
        chosen = [lb.backend_of(flow(i)) for i in range(6)]
        assert set(chosen) == set(BACKENDS)
        assert chosen[:3] == chosen[3:]  # rotor wraps deterministically

    def test_affinity_sticks_per_flow(self, sim):
        lb = LoadBalancer(sim, "lb", backends=BACKENDS)
        lb.receive(make_packet(flow(0), flags=("SYN",)))
        sim.run()
        first = lb.backend_of(flow(0))
        for _ in range(5):
            lb.receive(make_packet(flow(0), payload="x"))
        sim.run()
        assert lb.backend_of(flow(0)) == first
        assert lb.broken_affinity == 0

    def test_fin_releases_binding(self, sim):
        lb = LoadBalancer(sim, "lb", backends=BACKENDS)
        lb.receive(make_packet(flow(0), flags=("SYN",)))
        lb.receive(make_packet(flow(0), flags=("FIN", "ACK")))
        sim.run()
        assert lb.backend_of(flow(0)) is None
        stats = lb._stats_for(BACKENDS[0])
        assert stats.active_flows == 0
        assert stats.total_flows == 1

    def test_midflow_without_binding_breaks_affinity(self, sim):
        lb = LoadBalancer(sim, "lb", backends=BACKENDS)
        lb.receive(make_packet(flow(0), flags=("ACK",), payload="mid"))
        sim.run()
        assert lb.broken_affinity == 1

    def test_unhealthy_backend_skipped(self, sim):
        lb = LoadBalancer(sim, "lb", backends=BACKENDS)
        lb._stats_for(BACKENDS[0]).healthy = False
        for i in range(4):
            lb.receive(make_packet(flow(i), flags=("SYN",)))
        sim.run()
        assert all(
            lb.backend_of(flow(i)) != BACKENDS[0] for i in range(4)
        )

    def test_weighted_selection(self, sim):
        lb = LoadBalancer(sim, "lb", backends=BACKENDS[:2])
        lb._stats_for(BACKENDS[0]).weight = 3
        for i in range(8):
            lb.receive(make_packet(flow(i), flags=("SYN",)))
        sim.run()
        first = sum(1 for i in range(8)
                    if lb.backend_of(flow(i)) == BACKENDS[0])
        assert first == 6  # 3:1 weighting over 8 flows


class TestLBState:
    def test_perflow_roundtrip(self, sim):
        a = LoadBalancer(sim, "a", backends=BACKENDS)
        b = LoadBalancer(sim, "b", backends=BACKENDS)
        a.receive(make_packet(flow(0), flags=("SYN",)))
        sim.run()
        key = a.state_keys(Scope.PERFLOW, Filter.wildcard())[0]
        b.import_chunk(a.export_chunk(Scope.PERFLOW, key))
        assert b.backend_of(flow(0)) == a.backend_of(flow(0))

    def test_backend_stats_merge_is_idempotent_max(self):
        mine = BackendStats("10.9.9.9")
        mine.packets = 5
        mine.total_flows = 2
        theirs = BackendStats("10.9.9.9")
        theirs.packets = 7
        theirs.total_flows = 3
        mine.merge_from(theirs.to_dict())
        assert mine.packets == 7
        assert mine.total_flows == 3
        snapshot = mine.to_dict()
        mine.merge_from(snapshot)
        assert mine.packets == 7  # converged

    def test_allflows_rotor_max_merge(self, sim):
        a = LoadBalancer(sim, "a", backends=BACKENDS)
        b = LoadBalancer(sim, "b", backends=BACKENDS)
        for i in range(5):
            a.receive(make_packet(flow(i), flags=("SYN",)))
        sim.run()
        chunk = a.export_chunk(Scope.ALLFLOWS, "rotor")
        b.import_chunk(chunk)
        assert b._rotor == a._rotor

    def test_lossfree_move_preserves_affinity(self):
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: LoadBalancer(s, n, backends=BACKENDS)
        )
        # Establish 6 sessions at inst1.
        for i in range(6):
            dep.inject(make_packet(flow(i), flags=("SYN",)))
        dep.sim.run()
        before = {i: a.backend_of(flow(i)) for i in range(6)}
        op = dep.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                 scope="per+multi", guarantee="lf")
        dep.sim.run()
        assert op.done.value.aborted is None
        # Mid-flow packets now hit inst2 and stay pinned to the same
        # backend — no broken sessions.
        for i in range(6):
            dep.inject(make_packet(flow(i), flags=("ACK",), payload="more"))
        dep.sim.run()
        assert b.broken_affinity == 0
        after = {i: b.backend_of(flow(i)) for i in range(6)}
        assert after == before

    def test_unsafe_reroute_breaks_sessions(self):
        dep, (a, b) = build_multi_instance_deployment(
            2, nf_factory=lambda s, n: LoadBalancer(s, n, backends=BACKENDS)
        )
        for i in range(6):
            dep.inject(make_packet(flow(i), flags=("SYN",)))
        dep.sim.run()
        # Reroute without moving state.
        dep.switch.table.install(LOCAL_NET_FILTER, 500, ["inst2"], 0.0)
        for i in range(6):
            dep.inject(make_packet(flow(i), flags=("ACK",), payload="more"))
        dep.sim.run()
        assert b.broken_affinity == 6
