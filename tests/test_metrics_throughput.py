"""Tests for the throughput metrics."""

import pytest

from repro.metrics import sustained_throughput, throughput_timeline, time_to_reach


class FakeNF:
    def __init__(self, times):
        self.processing_log = [(t, i) for i, t in enumerate(times)]


class TestThroughputTimeline:
    def test_empty_log(self):
        assert throughput_timeline([FakeNF([])]) == []

    def test_counts_per_bucket(self):
        nf = FakeNF([10.0, 20.0, 30.0, 60.0])
        timeline = throughput_timeline([nf], bucket_ms=50.0)
        # bucket 0: 3 packets in 50 ms -> 60 pps; bucket 1: 1 -> 20 pps.
        assert timeline[0] == (0.0, 60.0)
        assert timeline[1] == (50.0, 20.0)

    def test_merges_multiple_nfs(self):
        a = FakeNF([10.0, 20.0])
        b = FakeNF([30.0, 40.0])
        timeline = throughput_timeline([a, b], bucket_ms=50.0)
        assert timeline[0] == (0.0, 80.0)

    def test_until_extends_horizon(self):
        nf = FakeNF([10.0])
        timeline = throughput_timeline([nf], bucket_ms=50.0, until=200.0)
        assert len(timeline) == 5
        assert timeline[-1][1] == 0.0


class TestSustainedThroughput:
    def test_window_average(self):
        timeline = [(0.0, 100.0), (50.0, 200.0), (100.0, 300.0)]
        assert sustained_throughput(timeline, 0.0, 100.0) == 150.0
        assert sustained_throughput(timeline, 50.0) == 250.0

    def test_empty_window(self):
        assert sustained_throughput([], 0.0) == 0.0


class TestTimeToReach:
    def test_finds_sustained_run(self):
        timeline = [(0.0, 10.0), (50.0, 90.0), (100.0, 95.0), (150.0, 96.0)]
        t = time_to_reach(timeline, 90.0, sustain_buckets=2)
        assert t == 50.0

    def test_single_spike_not_sustained(self):
        timeline = [(0.0, 10.0), (50.0, 95.0), (100.0, 10.0), (150.0, 10.0)]
        assert time_to_reach(timeline, 90.0, sustain_buckets=2) is None

    def test_after_ms_skips_early_run(self):
        timeline = [(0.0, 95.0), (50.0, 95.0), (100.0, 10.0),
                    (150.0, 95.0), (200.0, 95.0)]
        t = time_to_reach(timeline, 90.0, after_ms=100.0, sustain_buckets=2)
        assert t == 150.0
