"""Tests for the PRADS-like asset monitor."""

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.nf import Scope
from repro.nfs.monitor import AssetMonitor, AssetRecord, sniff_service
from tests.conftest import make_packet


@pytest.fixture
def mon(sim):
    return AssetMonitor(sim, "mon")


def run_packets(sim, nf, packets):
    for packet in packets:
        nf.receive(packet)
    sim.run()


class TestProcessing:
    def test_conn_record_created_and_counted(self, sim, mon, flow):
        run_packets(sim, mon, [make_packet(flow, flags=("SYN",)),
                               make_packet(flow, payload="data")])
        record = mon.conn_for(flow)
        assert record is not None
        assert record.packets == 2
        assert "SYN" in record.flags_seen

    def test_both_directions_share_record(self, sim, mon, flow):
        run_packets(sim, mon, [make_packet(flow), make_packet(flow.reversed())])
        assert mon.conn_count() == 1
        assert mon.conn_for(flow).packets == 2

    def test_assets_for_both_hosts(self, sim, mon, flow):
        run_packets(sim, mon, [make_packet(flow, flags=("SYN",))])
        assert mon.asset_for("10.0.1.2") is not None
        assert mon.asset_for("203.0.113.5") is not None

    def test_service_detection_attributed_to_sender(self, sim, mon, flow):
        run_packets(sim, mon, [make_packet(flow.reversed(), payload="HTTP/1.1 200")])
        assert "http-server" in mon.asset_for("203.0.113.5").services
        assert "http-server" not in mon.asset_for("10.0.1.2").services

    def test_global_stats(self, sim, mon, flow):
        run_packets(sim, mon, [make_packet(flow, payload="x"),
                               make_packet(flow)])
        assert mon.stats["packets"] == 2
        assert mon.stats["flows"] == 1
        assert mon.stats["bytes"] > 0

    def test_sniff_service_signatures(self):
        assert sniff_service("HTTP/1.1 200 OK") == "http-server"
        assert sniff_service("GET / HTTP/1.1") == "http-client"
        assert sniff_service("SSH-2.0-OpenSSH") == "ssh"
        assert sniff_service("garbage") == ""


class TestStateHandlers:
    def test_perflow_export_import_roundtrip(self, sim, flow):
        src = AssetMonitor(sim, "src")
        dst = AssetMonitor(sim, "dst")
        run_packets(sim, src, [make_packet(flow, flags=("SYN",)),
                               make_packet(flow, payload="abc")])
        keys = src.state_keys(Scope.PERFLOW, Filter.wildcard())
        chunk = src.export_chunk(Scope.PERFLOW, keys[0])
        dst.import_chunk(chunk)
        assert dst.conn_for(flow).packets == 2

    def test_multiflow_merge_unions_services(self, sim, flow):
        a = AssetMonitor(sim, "a")
        b = AssetMonitor(sim, "b")
        run_packets(sim, a, [make_packet(flow, payload="GET / HTTP/1.1")])
        run_packets(sim, b, [make_packet(flow, payload="SSH-2.0")])
        chunk = a.export_chunk(Scope.MULTIFLOW, FlowId.for_host("10.0.1.2"))
        b.import_chunk(chunk)
        services = b.asset_for("10.0.1.2").services
        assert "http-client" in services and "ssh" in services

    def test_allflows_merge_adds(self, sim, flow):
        a = AssetMonitor(sim, "a")
        b = AssetMonitor(sim, "b")
        run_packets(sim, a, [make_packet(flow)])
        run_packets(sim, b, [make_packet(flow), make_packet(flow)])
        chunk = a.export_chunk(Scope.ALLFLOWS, "stats")
        b.import_chunk(chunk)
        assert b.stats["packets"] == 3

    def test_multiflow_keys_respect_ip_filter(self, sim, flow):
        mon = AssetMonitor(sim, "m")
        run_packets(sim, mon, [make_packet(flow)])
        local = mon.state_keys(
            Scope.MULTIFLOW, Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        )
        assert FlowId.for_host("10.0.1.2") in local
        assert FlowId.for_host("203.0.113.5") not in local

    def test_perflow_delete(self, sim, mon, flow):
        run_packets(sim, mon, [make_packet(flow)])
        fid = FlowId.for_flow(flow.canonical())
        assert mon.delete_by_flowid(Scope.PERFLOW, fid) == 1
        assert mon.delete_by_flowid(Scope.PERFLOW, fid) == 0

    def test_export_chunk_missing_key_returns_none(self, sim, mon, flow):
        fid = FlowId.for_flow(flow.canonical())
        assert mon.export_chunk(Scope.PERFLOW, fid) is None

    def test_asset_record_merge_idempotent(self):
        record = AssetRecord("10.0.0.1", 5.0)
        record.observe(6.0, service="ssh", new_connection=True)
        snapshot = record.to_dict()
        record.merge_from(snapshot)
        record.merge_from(snapshot)
        assert record.connections == 1
        assert record.services == ["ssh"]

    def test_perflow_import_merges_counters(self, sim, flow):
        # A moved record folds into whatever the destination improvised
        # while it briefly owned the flow: packet totals are conserved
        # across arbitrary move chains.
        a = AssetMonitor(sim, "a")
        b = AssetMonitor(sim, "b")
        run_packets(sim, a, [make_packet(flow), make_packet(flow)])
        run_packets(sim, b, [make_packet(flow)])
        chunk = a.export_chunk(
            Scope.PERFLOW, FlowId.for_flow(flow.canonical())
        )
        b.import_chunk(chunk)
        assert b.conn_for(flow).packets == 3  # merged, not clobbered

    def test_perflow_snapshot_import_replaces(self, sim, flow):
        # Share replication pushes authoritative snapshots: the replica's
        # stale copy of the *same* state must be replaced, not added to.
        a = AssetMonitor(sim, "a")
        b = AssetMonitor(sim, "b")
        run_packets(sim, a, [make_packet(flow), make_packet(flow)])
        run_packets(sim, b, [make_packet(flow)])
        chunk = a.export_chunk(
            Scope.PERFLOW, FlowId.for_flow(flow.canonical())
        )
        chunk.snapshot = True
        b.import_chunk(chunk)
        assert b.conn_for(flow).packets == 2  # replaced
