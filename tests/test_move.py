"""End-to-end tests for the move operation (§5.1)."""

import pytest

from repro.controller.move import Guarantee
from repro.flowspace import Filter
from repro.harness import run_move_experiment
from repro.nf import Scope


class TestGuaranteeParsing:
    def test_aliases(self):
        assert Guarantee.parse("ng") is Guarantee.NONE
        assert Guarantee.parse("loss-free") is Guarantee.LOSS_FREE
        assert Guarantee.parse("LF") is Guarantee.LOSS_FREE
        assert Guarantee.parse("lf+op") is Guarantee.ORDER_PRESERVING
        assert Guarantee.parse(Guarantee.NONE) is Guarantee.NONE

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            Guarantee.parse("super-safe")


class TestMoveValidation:
    def test_early_release_requires_parallel(self, two_monitor_deployment):
        dep, _src, _dst = two_monitor_deployment
        with pytest.raises(ValueError):
            dep.controller.move(
                "prads1", "prads2", Filter.wildcard(),
                parallel=False, early_release=True,
            )

    def test_early_release_single_scope_only(self, two_monitor_deployment):
        dep, _src, _dst = two_monitor_deployment
        with pytest.raises(ValueError):
            dep.controller.move(
                "prads1", "prads2", Filter.wildcard(),
                scope="per+multi", early_release=True,
            )


class TestNoGuaranteeMove:
    def test_moves_state_and_reroutes(self):
        result = run_move_experiment("ng", n_flows=40)
        assert result.report.total_chunks == 40
        dep = result.deployment
        assert dep.nfs["inst2"].conn_count() == 40
        assert dep.nfs["inst1"].conn_count() == 0

    def test_drops_packets(self):
        result = run_move_experiment("ng", n_flows=40)
        assert result.report.packets_dropped > 0
        assert not result.loss_free

    def test_parallel_faster_than_sequential(self):
        sequential = run_move_experiment("ng", parallel=False, n_flows=60)
        parallel = run_move_experiment("ng", parallel=True, n_flows=60)
        assert parallel.duration_ms < sequential.duration_ms

    def test_drop_count_scales_with_rate(self):
        slow = run_move_experiment("ng", n_flows=40, rate_pps=1000.0)
        fast = run_move_experiment("ng", n_flows=40, rate_pps=8000.0)
        assert fast.report.packets_dropped > slow.report.packets_dropped


class TestLossFreeMove:
    def test_no_packet_loss(self):
        result = run_move_experiment("lf", n_flows=40)
        assert result.report.packets_dropped == 0
        assert result.loss_free, result.loss_free_detail

    def test_events_carry_affected_packets(self):
        result = run_move_experiment("lf", n_flows=40)
        assert result.report.packets_in_events > 0
        assert result.report.affected_uids

    def test_state_updates_reflected_at_destination(self):
        result = run_move_experiment("lf", n_flows=40)
        dep = result.deployment
        # Loss-free first half: every packet of every flow is reflected in
        # exactly one instance's connection counters.
        total = sum(
            record.packets
            for nf in dep.nfs.values()
            for record in nf.conns.values()
        )
        processed = sum(nf.packets_processed for nf in dep.nfs.values())
        assert total == processed

    def test_slower_than_ng_but_safe(self):
        ng = run_move_experiment("ng", n_flows=60)
        lf = run_move_experiment("lf", n_flows=60)
        assert lf.duration_ms > ng.duration_ms
        assert lf.report.packets_dropped == 0

    def test_affected_packets_pay_latency(self):
        result = run_move_experiment("lf", n_flows=60)
        assert result.latency.affected_count > 0
        assert result.latency.average_added_ms > 0

    def test_early_release_reduces_added_latency(self):
        plain = run_move_experiment("lf", n_flows=80, rate_pps=4000.0)
        released = run_move_experiment(
            "lf", early_release=True, n_flows=80, rate_pps=4000.0
        )
        assert released.loss_free
        assert (
            released.latency.average_added_ms < plain.latency.average_added_ms
        )

    def test_sequential_loss_free_also_safe(self):
        result = run_move_experiment("lf", parallel=False, n_flows=40)
        assert result.loss_free, result.loss_free_detail


class TestOrderPreservingMove:
    def test_loss_free_and_order_preserving(self):
        result = run_move_experiment("op", n_flows=40)
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail

    def test_buffers_packets_at_destination(self):
        result = run_move_experiment("op", n_flows=60, rate_pps=5000.0)
        assert result.report.packets_buffered_at_dst > 0

    def test_costs_more_than_lf(self):
        lf = run_move_experiment("lf", n_flows=60)
        op = run_move_experiment("op", n_flows=60)
        assert op.duration_ms > lf.duration_ms

    def test_phases_recorded(self):
        result = run_move_experiment("op", n_flows=30)
        phases = result.report.phases
        assert "phase1-installed" in phases
        assert "phase2-installed" in phases
        assert "dst-released" in phases
        assert phases["phase1-installed"] < phases["phase2-installed"]

    def test_op_with_early_release(self):
        result = run_move_experiment("op", early_release=True, n_flows=40)
        assert result.loss_free
        assert result.order_preserving, result.order_detail

    def test_quiescent_flowspace_does_not_wedge(self, two_monitor_deployment):
        # No traffic at all: the two-phase update must still complete via
        # the first-packet timeout.
        dep, src, dst = two_monitor_deployment
        op = dep.controller.move(
            "prads1", "prads2", Filter.wildcard(), guarantee="op"
        )
        dep.sim.run()
        assert op.done.triggered
        assert op.done.value.packets_in_events == 0


class TestMoveScopes:
    def test_multiflow_scope_moves_assets(self):
        result = run_move_experiment("lf", scope="multi", n_flows=30)
        dep = result.deployment
        assert result.report.chunks_moved.get("multiflow", 0) > 0
        assert len(dep.nfs["inst2"].assets) > 0

    def test_per_and_multi_scope(self):
        result = run_move_experiment("lf", scope="per+multi", n_flows=30)
        assert result.report.chunks_moved.get("perflow") == 30
        assert result.report.chunks_moved.get("multiflow", 0) > 0

    def test_filter_granularity_single_host(self, two_monitor_deployment):
        from repro.traffic import TraceConfig, TraceReplayer, \
            build_university_cloud_trace

        dep, src, dst = two_monitor_deployment
        trace = build_university_cloud_trace(TraceConfig(seed=2, n_flows=40))
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 2500.0)
        replayer.start()
        one_client = trace.flows[0].five_tuple.src_ip
        flt = Filter({"nw_src": one_client}, symmetric=True)
        holder = {}
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(op=dep.controller.move(
                "prads1", "prads2", flt, guarantee="lf")),
        )
        dep.sim.run()
        report = holder["op"].done.value
        assert 0 < report.total_chunks < 40
        assert src.conn_count() + dst.conn_count() == 40


class TestAllflowsScope:
    @pytest.mark.parametrize("guarantee", ["ng", "lf", "op"])
    def test_move_including_allflows_completes(self, guarantee,
                                               two_monitor_deployment):
        from repro.nf import Scope

        dep, src, dst = two_monitor_deployment
        flow = __import__("repro").FiveTuple("10.0.1.2", 1, "203.0.113.5", 80)
        from tests.conftest import make_packet

        src.receive(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        op = dep.controller.move(
            "prads1", "prads2", Filter.wildcard(),
            scope=(Scope.PERFLOW, Scope.ALLFLOWS),
            guarantee=guarantee,
        )
        dep.sim.run()
        assert op.done.triggered
        report = op.done.value
        assert report.aborted is None
        assert report.chunks_moved.get("allflows") == 1
        assert dst.stats["packets"] == 1

    def test_internal_errors_fail_done_loudly(self, two_monitor_deployment):
        dep, src, dst = two_monitor_deployment

        # Sabotage the source client so the delete explodes with a
        # non-NFCrash error mid-operation (raised inside the op process).
        def broken_delete(flowids):
            raise RuntimeError("injected fault")

        dep.controller.client("prads1").del_perflow = broken_delete
        from tests.conftest import make_packet

        flow = __import__("repro").FiveTuple("10.0.1.2", 1, "203.0.113.5", 80)
        src.receive(make_packet(flow, flags=("SYN",)))
        dep.sim.run()
        op = dep.controller.move("prads1", "prads2", Filter.wildcard(),
                                 guarantee="lf")
        dep.sim.run()
        assert op.done.triggered
        assert not op.done.ok
        assert "injected fault" in str(op.done.exception)
        assert op.report.aborted is not None


@pytest.mark.obs
class TestTraceBackedInvariants:
    """The no-double-processing invariant, checked from the trace itself.

    Every ``nf.process`` point record carries the packet uid and the
    instance that processed it; a loss-free order-preserving move must
    leave every uid processed exactly once across both instances.
    """

    @pytest.mark.parametrize("guarantee", ["lf", "op", "op-strong"])
    def test_no_packet_processed_twice(self, guarantee):
        result = run_move_experiment(
            guarantee=guarantee, n_flows=40, observe=True
        )
        assert result.report.aborted is None
        exporter = result.deployment.obs.exporter
        counts = {}
        for record in exporter.records:
            if record["name"] == "nf.process":
                counts[record["uid"]] = counts.get(record["uid"], 0) + 1
        assert counts, "expected nf.process records from an observed run"
        doubles = {uid: n for uid, n in counts.items() if n != 1}
        assert doubles == {}
        # The trace-derived view agrees with the NFs' own processing logs.
        assert counts == result.deployment.processed_uid_counts()

    def test_trace_and_switch_agree_on_forwarded_events(self):
        result = run_move_experiment(guarantee="lf", n_flows=30, observe=True)
        metrics = result.deployment.obs.metrics
        # Every buffered-then-released packet left via the packet-out path.
        released = metrics.counter(
            "ctrl.move.buffered_packets_released").total()
        packet_outs = metrics.counter("ctrl.packet_outs").total()
        assert packet_outs >= released > 0
