"""Tests for conflicting-move detection and deferral."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import build_multi_instance_deployment, check_loss_free
from tests.conftest import make_packet


def feed(dep, nf, count=10, net="10.0.1"):
    for index in range(count):
        flow = FiveTuple("%s.%d" % (net, index + 1), 30000 + index,
                         "203.0.113.5", 80)
        nf.receive(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


class TestMoveConflicts:
    def test_overlapping_moves_serialize(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 10)
        broad = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        narrow = Filter({"nw_src": "10.0.1.0/24"}, symmetric=True)
        first = dep.controller.move("inst1", "inst2", broad, guarantee="lf")
        second = dep.controller.move("inst2", "inst3", narrow, guarantee="lf")
        dep.sim.run()
        assert dep.controller.moves_queued_for_conflict == 1
        assert first.done.triggered
        assert second.done.triggered
        # The deferred move ran after the first completed and found the
        # state at inst2.
        assert second.report.started_at >= first.done.value.finished_at
        assert c.conn_count() == 10
        assert a.conn_count() == b.conn_count() == 0

    def test_disjoint_moves_run_concurrently(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 5, net="10.0.1")
        feed(dep, a, 5, net="10.0.2")
        left = Filter({"nw_src": "10.0.1.0/24"}, symmetric=True)
        right = Filter({"nw_src": "10.0.2.0/24"}, symmetric=True)
        first = dep.controller.move("inst1", "inst2", left, guarantee="lf")
        second = dep.controller.move("inst1", "inst3", right, guarantee="lf")
        dep.sim.run()
        assert dep.controller.moves_queued_for_conflict == 0
        # Ran overlapped in time.
        assert (second.report.started_at
                < first.done.value.finished_at)
        assert b.conn_count() == 5 and c.conn_count() == 5

    def test_deferred_move_report_available_after_completion(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 4)
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        first = dep.controller.move("inst1", "inst2", flt, guarantee="lf")
        deferred = dep.controller.move("inst2", "inst3", flt, guarantee="lf")
        assert deferred.report is None  # not started yet
        dep.sim.run()
        assert deferred.report is not None
        assert deferred.done.value.aborted is None

    def test_chain_of_conflicts(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 6)
        flt = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)
        ops = [
            dep.controller.move("inst1", "inst2", flt, guarantee="lf"),
            dep.controller.move("inst2", "inst3", flt, guarantee="lf"),
            dep.controller.move("inst3", "inst1", flt, guarantee="lf"),
        ]
        dep.sim.run()
        assert all(op.done.triggered for op in ops)
        # Round trip: everything is back at inst1, nothing lost.
        assert a.conn_count() == 6
        ok, detail = check_loss_free(dep.switch, [a, b, c])
        assert ok, detail
