"""Tests for packets, links, flow tables, the switch, and channels."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.net import (
    CONTROLLER_PORT,
    ControlChannel,
    FlowTable,
    HIGH_PRIORITY,
    LOW_PRIORITY,
    Link,
    MID_PRIORITY,
    Packet,
    Switch,
)
from repro.net.packet import HEADER_OVERHEAD_BYTES
from repro.sim import Simulator
from repro.sim.rng import derive_rng
from tests.conftest import make_packet


class TestPacket:
    def test_uids_unique_and_increasing(self, flow):
        a, b = Packet(flow), Packet(flow)
        assert b.uid == a.uid + 1

    def test_size_includes_headers(self, flow):
        assert Packet(flow).size_bytes == HEADER_OVERHEAD_BYTES
        assert Packet(flow, payload="abcd").size_bytes == HEADER_OVERHEAD_BYTES + 4

    def test_headers_include_flags(self, flow):
        packet = Packet(flow, tcp_flags=("SYN",))
        assert packet.headers()["tcp_flags"] == frozenset({"SYN"})

    def test_headers_omit_flags_when_empty(self, flow):
        assert "tcp_flags" not in Packet(flow).headers()

    def test_marks(self, flow):
        packet = Packet(flow)
        assert not packet.has_mark("do-not-buffer")
        packet.mark("do-not-buffer")
        assert packet.has_mark("do-not-buffer")

    def test_is_syn(self, flow):
        assert Packet(flow, tcp_flags=("SYN",)).is_syn()
        assert not Packet(flow, tcp_flags=("SYN", "ACK")).is_syn()
        assert not Packet(flow).is_syn()

    def test_is_fin_or_rst(self, flow):
        assert Packet(flow, tcp_flags=("FIN", "ACK")).is_fin_or_rst()
        assert Packet(flow, tcp_flags=("RST",)).is_fin_or_rst()
        assert not Packet(flow, tcp_flags=("ACK",)).is_fin_or_rst()


class TestLink:
    def test_delivers_after_latency(self, sim, flow):
        link = Link(sim, latency_ms=3.0)
        seen = []
        link.send(Packet(flow), lambda p: seen.append((sim.now, p.uid)))
        sim.run()
        assert seen == [(3.0, 1)]
        assert link.delivered == 1

    def test_fifo_for_equal_latency(self, sim, flow):
        link = Link(sim, latency_ms=1.0)
        seen = []
        for _ in range(3):
            link.send(Packet(flow), lambda p: seen.append(p.uid))
        sim.run()
        assert seen == [1, 2, 3]

    def test_loss_requires_rng(self, sim):
        with pytest.raises(ValueError):
            Link(sim, loss_rate=0.5)

    def test_lossy_link_drops_deterministically(self, sim, flow):
        link = Link(sim, latency_ms=1.0, loss_rate=0.5, rng=derive_rng(1, "loss"))
        delivered = []
        for _ in range(100):
            link.send(Packet(flow), lambda p: delivered.append(p))
        sim.run()
        assert 0 < len(delivered) < 100
        assert link.dropped + link.delivered == 100

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            Link(sim, jitter_ms=1.0)

    def test_jitter_can_reorder(self, sim, flow):
        link = Link(sim, latency_ms=1.0, jitter_ms=5.0, rng=derive_rng(3, "jit"))
        seen = []
        for _ in range(20):
            link.send(Packet(flow), lambda p: seen.append(p.uid))
        sim.run()
        assert sorted(seen) == list(range(1, 21))
        assert seen != sorted(seen)  # seed 3 produces at least one inversion


class TestFlowTable:
    def test_lookup_highest_priority_wins(self, sim, flow):
        table = FlowTable()
        table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        table.install(Filter({"tp_dst": 80}), HIGH_PRIORITY, ["b"], 0.0)
        entry = table.lookup(make_packet(flow))
        assert entry.actions == ("b",)

    def test_lookup_falls_through_to_lower_priority(self, sim, flow):
        table = FlowTable()
        table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        table.install(Filter({"tp_dst": 443}), HIGH_PRIORITY, ["b"], 0.0)
        assert table.lookup(make_packet(flow)).actions == ("a",)

    def test_no_match_returns_none(self, flow):
        table = FlowTable()
        table.install(Filter({"tp_dst": 443}), LOW_PRIORITY, ["a"], 0.0)
        assert table.lookup(make_packet(flow)) is None

    def test_install_replaces_same_filter_and_priority(self, flow):
        table = FlowTable()
        table.install(Filter.wildcard(), MID_PRIORITY, ["a"], 0.0)
        table.install(Filter.wildcard(), MID_PRIORITY, ["b"], 1.0)
        assert len(table) == 1
        assert table.lookup(make_packet(flow)).actions == ("b",)

    def test_newest_wins_among_equal_priority(self, flow):
        table = FlowTable()
        table.install(Filter({"nw_proto": 6}), MID_PRIORITY, ["a"], 0.0)
        table.install(Filter({"tp_dst": 80}), MID_PRIORITY, ["b"], 1.0)
        assert table.lookup(make_packet(flow)).actions == ("b",)

    def test_remove_by_filter_and_priority(self, flow):
        table = FlowTable()
        table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        table.install(Filter.wildcard(), HIGH_PRIORITY, ["b"], 0.0)
        assert table.remove(Filter.wildcard(), HIGH_PRIORITY) == 1
        assert table.lookup(make_packet(flow)).actions == ("a",)

    def test_remove_all_priorities(self):
        table = FlowTable()
        table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        table.install(Filter.wildcard(), HIGH_PRIORITY, ["b"], 0.0)
        assert table.remove(Filter.wildcard()) == 2
        assert len(table) == 0

    def test_counters_accumulate(self, flow):
        table = FlowTable()
        entry = table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        packet = make_packet(flow, payload="xy")
        entry.count(packet)
        entry.count(packet)
        assert entry.packets == 2
        assert entry.bytes == 2 * packet.size_bytes

    def test_entries_overlapping(self):
        table = FlowTable()
        table.install(Filter({"nw_src": "10.0.0.0/8"}), LOW_PRIORITY, ["a"], 0.0)
        table.install(Filter({"nw_src": "192.168.0.0/16"}), LOW_PRIORITY, ["b"], 0.0)
        overlapping = table.entries_overlapping(Filter({"nw_src": "10.5.0.0/16"}))
        assert [e.actions for e in overlapping] == [("a",)]


def build_switch(sim, **kwargs):
    switch = Switch(sim, **kwargs)
    received = {"a": [], "b": []}
    switch.attach("a", lambda p: received["a"].append(p), Link(sim, latency_ms=0.5))
    switch.attach("b", lambda p: received["b"].append(p), Link(sim, latency_ms=0.5))
    return switch, received


class TestSwitch:
    def test_forwards_by_flow_table(self, sim, flow):
        switch, received = build_switch(sim)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        switch.inject(make_packet(flow))
        sim.run()
        assert len(received["a"]) == 1
        assert received["b"] == []

    def test_miss_counts_and_drops(self, sim, flow):
        switch, received = build_switch(sim)
        switch.inject(make_packet(flow))
        sim.run()
        assert switch.table_misses == 1
        assert received["a"] == []

    def test_multi_output_duplicates(self, sim, flow):
        switch, received = build_switch(sim)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a", "b"], 0.0)
        switch.inject(make_packet(flow))
        sim.run()
        assert len(received["a"]) == 1 and len(received["b"]) == 1

    def test_controller_action_sends_packet_in(self, sim, flow):
        switch, _ = build_switch(sim)
        seen = []
        switch.set_packet_in_handler(lambda p: seen.append(p.uid))
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, [CONTROLLER_PORT], 0.0)
        switch.inject(make_packet(flow))
        sim.run()
        assert seen == [1]

    def test_flowmod_applies_after_delay(self, sim, flow):
        switch, received = build_switch(sim, flowmod_delay_ms=10.0)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        done = switch.install(Filter.wildcard(), ["b"], MID_PRIORITY)
        # A packet injected before the delay elapses uses the old rule.
        sim.schedule(5.0, lambda: switch.inject(make_packet(flow)))
        sim.schedule(15.0, lambda: switch.inject(make_packet(flow)))
        sim.run()
        assert done.triggered
        assert len(received["a"]) == 1
        assert len(received["b"]) == 1

    def test_remove_applies_after_delay(self, sim, flow):
        switch, received = build_switch(sim, flowmod_delay_ms=5.0)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        switch.remove(Filter.wildcard(), LOW_PRIORITY)
        sim.schedule(10.0, lambda: switch.inject(make_packet(flow)))
        sim.run()
        assert received["a"] == []
        assert switch.table_misses == 1

    def test_packet_out_rate_limited(self, sim, flow):
        switch, received = build_switch(sim, packet_out_rate_pps=1000.0)  # 1/ms
        times = []
        switch.attach(
            "sink", lambda p: times.append(sim.now), Link(sim, latency_ms=0.0)
        )
        for _ in range(4):
            switch.packet_out(make_packet(flow), "sink")
        sim.run()
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_counters_readable(self, sim, flow):
        switch, _ = build_switch(sim)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        packet = make_packet(flow, payload="xyz")
        switch.inject(packet)
        packets, size = switch.counters(Filter.wildcard(), LOW_PRIORITY)
        assert packets == 1 and size == packet.size_bytes
        assert switch.counters(Filter({"tp_dst": 1}), LOW_PRIORITY) == (0, 0)

    def test_forward_log_records_order(self, sim, flow):
        switch, _ = build_switch(sim)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["a"], 0.0)
        first, second = make_packet(flow), make_packet(flow)
        switch.inject(first)
        switch.inject(second)
        assert [uid for (_t, uid, _a) in switch.forward_log] == [first.uid, second.uid]

    def test_unknown_port_raises(self, sim, flow):
        switch, _ = build_switch(sim)
        switch.table.install(Filter.wildcard(), LOW_PRIORITY, ["nope"], 0.0)
        with pytest.raises(KeyError):
            switch.inject(make_packet(flow))


class TestControlChannel:
    def test_delivery_includes_latency_and_transmission(self, sim):
        channel = ControlChannel(sim, latency_ms=2.0, bandwidth_bytes_per_ms=1000.0)
        seen = []
        channel.send(3000, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_fifo_even_when_sizes_differ(self, sim):
        channel = ControlChannel(sim, latency_ms=1.0, bandwidth_bytes_per_ms=100.0)
        seen = []
        channel.send(1000, lambda: seen.append("big"))  # 11 ms
        channel.send(1, lambda: seen.append("small"))  # nominally ~1 ms
        sim.run()
        assert seen == ["big", "small"]

    def test_counters(self, sim):
        channel = ControlChannel(sim)
        channel.send(100, lambda: None)
        channel.send(50, lambda: None)
        assert channel.messages_sent == 2
        assert channel.bytes_sent == 150
