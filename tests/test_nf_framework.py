"""Tests for the NF framework: state chunks, merging, events, base class."""

import pytest

from repro.flowspace import Filter, FlowId
from repro.nf import (
    EventAction,
    NFCostModel,
    Scope,
    StateChunk,
    chunks_total_bytes,
    normalize_scope,
)
from repro.nf import merge
from repro.nf.events import DO_NOT_BUFFER, DO_NOT_DROP, EventRule, PacketEvent
from repro.nf.state import EVERYTHING, MULTI, PER, PER_AND_MULTI
from repro.nfs.monitor import AssetMonitor
from repro.sim import Simulator
from tests.conftest import make_packet


class TestStateChunk:
    def test_json_roundtrip(self, flow):
        fid = FlowId.for_flow(flow)
        chunk = StateChunk(Scope.PERFLOW, fid, {"count": 3, "name": "x"})
        again = StateChunk.from_json_bytes(chunk.to_json_bytes())
        assert again.scope is Scope.PERFLOW
        assert again.flowid == fid
        assert again.data == {"count": 3, "name": "x"}

    def test_allflows_chunk_has_no_flowid(self):
        chunk = StateChunk(Scope.ALLFLOWS, None, {"stats": {}})
        again = StateChunk.from_json_bytes(chunk.to_json_bytes())
        assert again.flowid is None

    def test_size_computed_from_encoding(self):
        chunk = StateChunk(Scope.ALLFLOWS, None, {"k": "v" * 100})
        assert chunk.size_bytes == len(chunk.to_json_bytes())

    def test_size_override(self):
        chunk = StateChunk(Scope.MULTIFLOW, None, {"url": "/x"}, size_bytes=4096)
        assert chunk.size_bytes == 4096

    def test_total_bytes(self):
        chunks = [
            StateChunk(Scope.PERFLOW, None, {}, size_bytes=10),
            StateChunk(Scope.PERFLOW, None, {}, size_bytes=20),
        ]
        assert chunks_total_bytes(chunks) == 30

    def test_normalize_scope_aliases(self):
        assert normalize_scope("per") == PER
        assert normalize_scope("multi") == MULTI
        assert normalize_scope("per+multi") == PER_AND_MULTI
        assert normalize_scope("everything") == EVERYTHING
        assert normalize_scope(Scope.PERFLOW) == (Scope.PERFLOW,)
        assert normalize_scope([Scope.MULTIFLOW]) == (Scope.MULTIFLOW,)
        with pytest.raises(ValueError):
            normalize_scope("bogus")


class TestMergeHelpers:
    def test_counters_add(self):
        assert merge.add_counters(3, 4) == 7

    def test_average(self):
        assert merge.average(2.0, 4.0) == 3.0

    def test_latest_earliest(self):
        assert merge.latest(5.0, 3.0) == 5.0
        assert merge.earliest(5.0, 3.0) == 3.0

    def test_union_sorted(self):
        assert merge.union([3, 1], [2, 1]) == [1, 2, 3]

    def test_intersection_sorted(self):
        assert merge.intersection([3, 1, 2], [2, 3, 5]) == [2, 3]

    def test_merge_dicts_rules_and_default(self):
        merged = merge.merge_dicts(
            {"count": 1, "ts": 10.0, "name": "a"},
            {"count": 2, "ts": 5.0, "extra": True},
            rules={"count": merge.add_counters, "ts": merge.latest},
        )
        assert merged == {"count": 3, "ts": 10.0, "name": "a", "extra": True}


class TestEventRule:
    def test_effective_action_override_buffer(self, flow):
        rule = EventRule(Filter.wildcard(), EventAction.BUFFER)
        packet = make_packet(flow)
        assert rule.effective_action(packet) is EventAction.BUFFER
        packet.mark(DO_NOT_BUFFER)
        assert rule.effective_action(packet) is EventAction.PROCESS

    def test_effective_action_override_drop(self, flow):
        rule = EventRule(Filter.wildcard(), EventAction.DROP)
        packet = make_packet(flow)
        packet.mark(DO_NOT_DROP)
        assert rule.effective_action(packet) is EventAction.PROCESS

    def test_marks_do_not_cross_over(self, flow):
        drop_rule = EventRule(Filter.wildcard(), EventAction.DROP)
        packet = make_packet(flow)
        packet.mark(DO_NOT_BUFFER)
        assert drop_rule.effective_action(packet) is EventAction.DROP

    def test_event_size_includes_packet(self, flow):
        packet = make_packet(flow, payload="abc")
        event = PacketEvent("nf", packet, EventAction.DROP, 1.0)
        assert event.size_bytes > packet.size_bytes


class TestCostModel:
    def test_serialize_scales_with_size(self):
        costs = NFCostModel(serialize_base_ms=1.0, serialize_per_kb_ms=2.0)
        assert costs.serialize_ms(0) == 1.0
        assert costs.serialize_ms(2048) == 5.0

    def test_effective_proc_inflation(self):
        costs = NFCostModel(proc_ms=1.0, export_overhead_frac=0.1,
                            export_overhead_ms=0.05)
        assert costs.effective_proc_ms(False) == 1.0
        assert costs.effective_proc_ms(True) == pytest.approx(1.15)

    def test_scaled_override(self):
        costs = NFCostModel(proc_ms=1.0)
        faster = costs.scaled(proc_ms=0.5)
        assert faster.proc_ms == 0.5
        assert costs.proc_ms == 1.0


def monitor(sim, name="mon"):
    return AssetMonitor(sim, name)


class TestProcessingLoop:
    def test_packets_processed_serially(self, sim, flow):
        nf = monitor(sim)
        for _ in range(3):
            nf.receive(make_packet(flow, payload="x"))
        sim.run()
        assert nf.packets_processed == 3
        times = [t for (t, _uid) in nf.processing_log]
        # Spaced by at least proc_ms each.
        assert times[1] - times[0] >= nf.costs.proc_ms

    def test_processing_log_in_arrival_order(self, sim, flow):
        nf = monitor(sim)
        packets = [make_packet(flow) for _ in range(5)]
        for packet in packets:
            nf.receive(packet)
        sim.run()
        assert [uid for (_t, uid) in nf.processing_log] == [p.uid for p in packets]

    def test_drop_rule_silent(self, sim, flow):
        nf = monitor(sim)
        nf.sb_enable_events(Filter.wildcard(), EventAction.DROP, silent=True)
        nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_processed == 0
        assert nf.packets_dropped_by_event == 1
        assert nf.packets_dropped_silent == 1
        assert nf.events_raised == 0

    def test_drop_rule_raises_events(self, sim, flow):
        nf = monitor(sim)
        events = []
        nf.event_sink = events.append
        nf.sb_enable_events(Filter.wildcard(), EventAction.DROP)
        nf.receive(make_packet(flow, payload="p"))
        sim.run()
        assert nf.packets_dropped_by_event == 1
        assert nf.packets_dropped_silent == 0
        assert len(events) == 1
        assert events[0].action_taken is EventAction.DROP
        assert events[0].packet.payload == "p"

    def test_process_rule_raises_event_after_processing(self, sim, flow):
        nf = monitor(sim)
        events = []
        nf.event_sink = events.append
        nf.sb_enable_events(Filter.wildcard(), EventAction.PROCESS)
        nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_processed == 1
        assert len(events) == 1
        assert events[0].action_taken is EventAction.PROCESS

    def test_buffer_rule_holds_until_disable(self, sim, flow):
        nf = monitor(sim)
        flt = Filter.wildcard()
        nf.sb_enable_events(flt, EventAction.BUFFER)
        for _ in range(3):
            nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_processed == 0
        assert nf.buffered_packet_count() == 3
        nf.sb_disable_events(flt)
        sim.run()
        assert nf.packets_processed == 3
        assert nf.buffered_packet_count() == 0

    def test_buffer_release_preserves_order(self, sim, flow):
        nf = monitor(sim)
        flt = Filter({"tp_dst": 80})
        nf.sb_enable_events(flt, EventAction.BUFFER)
        packets = [make_packet(flow) for _ in range(4)]
        for packet in packets:
            nf.receive(packet)
        sim.run()
        nf.sb_disable_events(flt)
        sim.run()
        assert [uid for (_t, uid) in nf.processing_log] == [p.uid for p in packets]

    def test_do_not_buffer_mark_processes(self, sim, flow):
        nf = monitor(sim)
        nf.sb_enable_events(Filter.wildcard(), EventAction.BUFFER)
        marked = make_packet(flow)
        marked.mark(DO_NOT_BUFFER)
        nf.receive(marked)
        nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_processed == 1
        assert nf.buffered_packet_count() == 1

    def test_newest_matching_rule_wins(self, sim, flow):
        nf = monitor(sim)
        nf.sb_enable_events(Filter.wildcard(), EventAction.BUFFER)
        nf.sb_enable_events(Filter({"tp_dst": 80}), EventAction.DROP, silent=True)
        nf.receive(make_packet(flow))  # tp_dst=80 -> newest rule: drop
        sim.run()
        assert nf.packets_dropped_silent == 1
        assert nf.buffered_packet_count() == 0

    def test_enable_same_filter_updates_action(self, sim, flow):
        nf = monitor(sim)
        flt = Filter.wildcard()
        nf.sb_enable_events(flt, EventAction.BUFFER)
        nf.sb_enable_events(flt, EventAction.DROP, silent=True)
        assert nf.event_rule_count == 1
        nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_dropped_silent == 1

    def test_disable_events_covered_removes_per_flow_rules(self, sim, flow):
        nf = monitor(sim)
        nf.sb_enable_events(Filter.for_flow(flow), EventAction.DROP)
        nf.sb_enable_events(
            Filter({"nw_src": "10.0.1.2", "tp_src": 1234,
                    "nw_dst": "203.0.113.5", "tp_dst": 80, "nw_proto": 6}),
            EventAction.DROP,
        )
        nf.sb_disable_events_covered(Filter({"nw_src": "10.0.0.0/8"}, symmetric=True))
        assert nf.event_rule_count == 0

    def test_failed_nf_discards_traffic(self, sim, flow):
        nf = monitor(sim)
        nf.failed = True
        nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_processed == 0
        assert nf.packets_lost_to_failure == 1


class TestStateTransferTiming:
    def test_get_takes_serialize_time_per_chunk(self, sim, flow):
        nf = monitor(sim)
        nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        proc = nf.sb_get(Scope.PERFLOW, Filter.wildcard())
        start = sim.now
        sim.run()
        chunks = proc.result
        assert len(chunks) == 1
        assert sim.now - start >= nf.costs.serialize_ms(chunks[0].size_bytes)

    def test_get_streams_chunks_as_serialized(self, sim, flow):
        nf = monitor(sim)
        from repro.flowspace.fivetuple import FiveTuple

        for i in range(3):
            other = FiveTuple("10.0.1.%d" % (i + 1), 1000 + i, "203.0.113.5", 80)
            nf.receive(make_packet(other, flags=("SYN",)))
        sim.run()
        stream_times = []
        proc = nf.sb_get(
            Scope.PERFLOW, Filter.wildcard(),
            stream=lambda c: stream_times.append(sim.now),
        )
        sim.run()
        assert len(stream_times) == 3
        assert stream_times[0] < stream_times[-1]

    def test_late_locking_installs_rule_per_chunk(self, sim, flow):
        nf = monitor(sim)
        nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        assert nf.event_rule_count == 0
        proc = nf.sb_get(Scope.PERFLOW, Filter.wildcard(), lock_per_chunk=True)
        sim.run()
        assert nf.event_rule_count == 1

    def test_put_imports_chunks(self, sim, flow):
        src = monitor(sim, "src")
        dst = monitor(sim, "dst")
        src.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        get_proc = src.sb_get(Scope.PERFLOW, Filter.wildcard())
        sim.run()
        put_proc = dst.sb_put(get_proc.result)
        sim.run()
        assert put_proc.result == 1
        assert dst.conn_count() == 1

    def test_delete_removes_and_counts(self, sim, flow):
        nf = monitor(sim)
        nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        get_proc = nf.sb_get(Scope.PERFLOW, Filter.wildcard())
        sim.run()
        flowids = [c.flowid for c in get_proc.result]
        del_proc = nf.sb_delete(Scope.PERFLOW, flowids)
        sim.run()
        assert del_proc.result == 1
        assert nf.conn_count() == 0

    def test_operations_serialize_fifo(self, sim, flow):
        nf = monitor(sim)
        nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        order = []
        first = nf.sb_get(Scope.PERFLOW, Filter.wildcard())
        second = nf.sb_get(Scope.PERFLOW, Filter.wildcard())
        first.done.add_callback(lambda e: order.append("first"))
        second.done.add_callback(lambda e: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_processing_inflated_during_export(self, sim, flow):
        costs = AssetMonitor(sim, "tmp").costs.scaled(
            proc_ms=1.0, export_overhead_frac=0.5, serialize_base_ms=50.0
        )
        nf = AssetMonitor(sim, "mon", costs=costs)
        nf.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        nf.sb_get(Scope.PERFLOW, Filter.wildcard())
        nf.receive(make_packet(flow))
        sim.run()
        assert any(duration == pytest.approx(1.5) for (_t, duration)
                   in nf.proc_durations)
