"""Metrics semantics plus the buffered-packet conservation property.

The registry half pins down counter/gauge/histogram behaviour (label
separation, monotonicity, reset, kind conflicts). The property half
asserts the invariant the loss-free guarantee rests on: every packet
the controller buffers during a successful move is later released, and
every packet the destination NF buffers is released when its buffer
opens — measured by the instrumentation itself, not by the mechanism
under test.
"""

import pytest

from repro.harness import run_move_experiment
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.obs


class TestCounter:
    def test_monotone_and_label_separated(self):
        registry = MetricsRegistry()
        counter = registry.counter("pkts")
        counter.inc(2, nf="a")
        counter.inc(3, nf="a")
        counter.inc(5, nf="b")
        assert counter.value(nf="a") == 5
        assert counter.value(nf="b") == 5
        assert counter.value(nf="c") == 0
        assert counter.total() == 10

    def test_label_order_insensitive(self):
        counter = MetricsRegistry().counter("pkts")
        counter.inc(1, nf="a", port="p1")
        counter.inc(1, port="p1", nf="a")
        assert counter.value(nf="a", port="p1") == 2

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("pkts")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.total() == 0

    def test_unlabelled_series(self):
        counter = MetricsRegistry().counter("pkts")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.snapshot() == {"_": 5}


class TestGauge:
    def test_set_add_value(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7, queue="q")
        gauge.add(-3, queue="q")
        assert gauge.value(queue="q") == 4
        assert gauge.value(queue="other") == 0


class TestHistogram:
    def test_aggregates(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        for value in (2.0, 4.0, 9.0):
            hist.observe(value, op="get")
        assert hist.count(op="get") == 3
        assert hist.sum(op="get") == 15.0
        assert hist.min(op="get") == 2.0
        assert hist.max(op="get") == 9.0
        assert hist.mean(op="get") == 5.0
        assert hist.values(op="get") == [2.0, 4.0, 9.0]

    def test_empty_series(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        assert hist.count() == 0
        assert hist.min() is None and hist.max() is None
        assert hist.mean() is None

    def test_snapshot_shape(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        hist.observe(1.0, op="put")
        hist.observe(3.0, op="put")
        assert hist.snapshot() == {
            "op=put": {
                "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0,
                "p50": 1.0, "p90": 3.0, "p99": 3.0,
            }
        }

    def test_percentiles_nearest_rank(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(90) == 90.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50, op="missing") is None

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("pkts.total").inc(3, nf="a")
        registry.gauge("depth").set(2)
        hist = registry.histogram("rpc_ms")
        hist.observe(1.0, op="put")
        hist.observe(3.0, op="put")
        text = registry.render_prometheus()
        assert "# TYPE pkts_total counter" in text
        assert 'pkts_total{nf="a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert "# TYPE rpc_ms summary" in text
        assert 'rpc_ms{op="put",quantile="0.5"} 1' in text
        assert 'rpc_ms{op="put",quantile="0.99"} 3' in text
        assert 'rpc_ms_sum{op="put"} 4' in text
        assert 'rpc_ms_count{op="put"} 2' in text


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.names() == ["x"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_reset_clears_series_keeps_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        registry.histogram("y").observe(1.0)
        registry.reset()
        assert registry.names() == ["x", "y"]
        assert registry.counter("x").total() == 0
        assert registry.histogram("y").count() == 0


class TestBufferConservation:
    """captured == released, measured by the obs layer itself."""

    @pytest.mark.parametrize("guarantee", ["lf", "op", "op-strong"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_controller_buffer_conserved(self, guarantee, seed):
        result = run_move_experiment(
            guarantee=guarantee, n_flows=40, seed=seed, observe=True
        )
        assert result.report.aborted is None
        metrics = result.deployment.obs.metrics
        captured = metrics.counter(
            "ctrl.move.buffered_packets_captured").total()
        released = metrics.counter(
            "ctrl.move.buffered_packets_released").total()
        assert captured > 0
        assert captured == released

    def test_dst_nf_buffer_conserved(self):
        result = run_move_experiment(guarantee="op", n_flows=40, observe=True)
        metrics = result.deployment.obs.metrics
        buffered = metrics.counter("nf.packets.buffered").value(nf="inst2")
        released = metrics.counter("nf.packets.released").value(nf="inst2")
        assert buffered > 0
        assert buffered == released

    def test_ng_move_counts_drops(self):
        result = run_move_experiment(guarantee="ng", n_flows=40, observe=True)
        metrics = result.deployment.obs.metrics
        dropped = metrics.counter("nf.packets.dropped").value(
            nf="inst1", mode="silent"
        )
        assert dropped == result.report.packets_dropped
        assert dropped > 0

    def test_chunk_accounting_matches_report(self):
        result = run_move_experiment(guarantee="lf", n_flows=25, observe=True)
        metrics = result.deployment.obs.metrics
        transferred = metrics.counter("ctrl.chunks.transferred").total()
        wire = metrics.counter("ctrl.chunks.wire_bytes").total()
        assert transferred == result.report.total_chunks
        assert wire == result.report.total_wire_bytes
