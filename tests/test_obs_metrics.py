"""Metrics semantics plus the buffered-packet conservation property.

The registry half pins down counter/gauge/histogram behaviour (label
separation, monotonicity, reset, kind conflicts). The property half
asserts the invariant the loss-free guarantee rests on: every packet
the controller buffers during a successful move is later released, and
every packet the destination NF buffers is released when its buffer
opens — measured by the instrumentation itself, not by the mechanism
under test.
"""

import random

import pytest

from repro.harness import run_move_experiment
from repro.obs import MetricsRegistry
from repro.obs.metrics import GAMMA, OVERFLOW_LABELS, percentile_of

pytestmark = pytest.mark.obs


class TestCounter:
    def test_monotone_and_label_separated(self):
        registry = MetricsRegistry()
        counter = registry.counter("pkts")
        counter.inc(2, nf="a")
        counter.inc(3, nf="a")
        counter.inc(5, nf="b")
        assert counter.value(nf="a") == 5
        assert counter.value(nf="b") == 5
        assert counter.value(nf="c") == 0
        assert counter.total() == 10

    def test_label_order_insensitive(self):
        counter = MetricsRegistry().counter("pkts")
        counter.inc(1, nf="a", port="p1")
        counter.inc(1, port="p1", nf="a")
        assert counter.value(nf="a", port="p1") == 2

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("pkts")
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.total() == 0

    def test_unlabelled_series(self):
        counter = MetricsRegistry().counter("pkts")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert counter.snapshot() == {"_": 5}


class TestGauge:
    def test_set_add_value(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(7, queue="q")
        gauge.add(-3, queue="q")
        assert gauge.value(queue="q") == 4
        assert gauge.value(queue="other") == 0


class TestHistogram:
    def test_aggregates(self):
        hist = MetricsRegistry(bounded_histograms=False).histogram("rpc_ms")
        for value in (2.0, 4.0, 9.0):
            hist.observe(value, op="get")
        assert hist.count(op="get") == 3
        assert hist.sum(op="get") == 15.0
        assert hist.min(op="get") == 2.0
        assert hist.max(op="get") == 9.0
        assert hist.mean(op="get") == 5.0
        assert hist.values(op="get") == [2.0, 4.0, 9.0]

    def test_bounded_aggregates_exact(self):
        # count/sum/min/max/mean are exact on the bounded implementation;
        # only percentile is approximate.
        hist = MetricsRegistry().histogram("rpc_ms")
        for value in (2.0, 4.0, 9.0):
            hist.observe(value, op="get")
        assert hist.count(op="get") == 3
        assert hist.sum(op="get") == 15.0
        assert hist.min(op="get") == 2.0
        assert hist.max(op="get") == 9.0
        assert hist.mean(op="get") == 5.0

    def test_bounded_values_rejected(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        hist.observe(1.0)
        with pytest.raises(TypeError):
            hist.values()

    def test_empty_series(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        assert hist.count() == 0
        assert hist.min() is None and hist.max() is None
        assert hist.mean() is None

    def test_snapshot_shape(self):
        hist = MetricsRegistry().histogram("rpc_ms")
        hist.observe(1.0, op="put")
        hist.observe(3.0, op="put")
        assert hist.snapshot() == {
            "op=put": {
                "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0,
                "p50": 1.0, "p90": 3.0, "p99": 3.0,
            }
        }

    def test_percentiles_nearest_rank(self):
        hist = MetricsRegistry(bounded_histograms=False).histogram("rpc_ms")
        for value in range(1, 101):
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(90) == 90.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50, op="missing") is None

    def test_percentile_edge_cases(self):
        for bounded in (False, True):
            hist = MetricsRegistry(
                bounded_histograms=bounded
            ).histogram("rpc_ms")
            hist.observe(7.5)
            # A single sample IS every percentile.
            assert hist.percentile(0) == 7.5
            assert hist.percentile(50) == 7.5
            assert hist.percentile(100) == 7.5
            with pytest.raises(ValueError):
                hist.percentile(-1)
            with pytest.raises(ValueError):
                hist.percentile(101)

    def test_percentile_of_edges(self):
        assert percentile_of([], 50) is None
        assert percentile_of([3.0], 0) == 3.0
        assert percentile_of([3.0], 100) == 3.0
        assert percentile_of([5.0, 1.0, 3.0], 0) == 1.0
        assert percentile_of([5.0, 1.0, 3.0], 100) == 5.0
        with pytest.raises(ValueError):
            percentile_of([1.0], 120)

    def test_bounded_within_one_bucket_of_raw_oracle(self):
        """Differential test: bounded percentiles land within one
        log-bucket width of the exact nearest-rank answer."""
        rng = random.Random(20260808)
        for trial in range(20):
            exact_reg = MetricsRegistry(bounded_histograms=False)
            approx_reg = MetricsRegistry()
            exact_hist = exact_reg.histogram("lat")
            approx_hist = approx_reg.histogram("lat")
            n = rng.randrange(1, 400)
            for _ in range(n):
                # Mix of magnitudes: sub-ms to tens of seconds.
                value = rng.uniform(0.01, 10.0) * 10 ** rng.randrange(0, 4)
                exact_hist.observe(value)
                approx_hist.observe(value)
            for q in (0, 1, 25, 50, 90, 99, 100):
                exact = exact_hist.percentile(q)
                approx = approx_hist.percentile(q)
                assert exact <= approx <= exact * GAMMA * (1 + 1e-9), (
                    trial, q, exact, approx
                )

    def test_bounded_zero_and_negative_samples(self):
        hist = MetricsRegistry().histogram("delta")
        for value in (-4.0, -1.0, 0.0, 2.0):
            hist.observe(value)
        assert hist.min() == -4.0
        assert hist.max() == 2.0
        assert hist.percentile(0) == -4.0
        assert hist.percentile(100) == 2.0
        # p50 (rank 2 of 4) falls on the -1.0 sample's bucket.
        p50 = hist.percentile(50)
        assert -1.0 * GAMMA * (1 + 1e-9) <= p50 <= -1.0 / GAMMA * (1 - 1e-9)

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("pkts.total").inc(3, nf="a")
        registry.gauge("depth").set(2)
        hist = registry.histogram("rpc_ms")
        hist.observe(1.0, op="put")
        hist.observe(3.0, op="put")
        text = registry.render_prometheus()
        assert "# TYPE pkts_total counter" in text
        assert 'pkts_total{nf="a"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert "# TYPE rpc_ms summary" in text
        assert 'rpc_ms{op="put",quantile="0.5"} 1' in text
        assert 'rpc_ms{op="put",quantile="0.99"} 3' in text
        assert 'rpc_ms_sum{op="put"} 4' in text
        assert 'rpc_ms_count{op="put"} 2' in text


class TestCardinalityGuard:
    def test_overflow_aggregates_and_warns_once(self):
        registry = MetricsRegistry(max_label_sets=3)
        counter = registry.counter("pkts")
        for i in range(3):
            counter.inc(1, flow="f%d" % i)
        with pytest.warns(RuntimeWarning):
            counter.inc(2, flow="f3")
        # Second overflow does NOT warn again.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            counter.inc(3, flow="f4")
        # Existing label sets still track exactly.
        assert counter.value(flow="f0") == 1
        # Overflowed increments aggregate into the 'other' bucket.
        assert counter.value(**OVERFLOW_LABELS) == 5
        assert counter.total() == 8
        assert counter.overflow_routed == 2

    def test_reset_reopens_capacity(self):
        registry = MetricsRegistry(max_label_sets=1)
        counter = registry.counter("pkts")
        counter.inc(1, flow="a")
        with pytest.warns(RuntimeWarning):
            counter.inc(1, flow="b")
        registry.reset()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            counter.inc(4, flow="c")  # capacity is free again, no warn
        assert counter.value(flow="c") == 4

    def test_histogram_overflow(self):
        registry = MetricsRegistry(max_label_sets=1)
        hist = registry.histogram("lat")
        hist.observe(1.0, flow="a")
        with pytest.warns(RuntimeWarning):
            hist.observe(9.0, flow="b")
        assert hist.count(flow="a") == 1
        assert hist.count(**OVERFLOW_LABELS) == 1


class TestBoundHandles:
    def test_bound_counter_matches_keyword_path(self):
        registry = MetricsRegistry()
        counter = registry.counter("pkts")
        handle = counter.bind(nf="a")
        handle.inc(2)
        handle.inc()
        counter.inc(5, nf="a")
        assert counter.value(nf="a") == 8
        with pytest.raises(ValueError):
            handle.inc(-1)

    def test_bound_handles_survive_reset(self):
        registry = MetricsRegistry()
        counter = registry.counter("pkts")
        gauge = registry.gauge("depth")
        hist = registry.histogram("lat")
        bound_counter = counter.bind(nf="a")
        bound_gauge = gauge.bind(q="x")
        bound_hist = hist.bind(op="get")
        bound_counter.inc(1)
        registry.reset()
        bound_counter.inc(3)
        bound_gauge.set(2.0)
        bound_gauge.add(1.0)
        bound_hist.observe(4.0)
        assert counter.value(nf="a") == 3
        assert gauge.value(q="x") == 3.0
        assert hist.count(op="get") == 1

    def test_bound_raw_histogram(self):
        registry = MetricsRegistry(bounded_histograms=False)
        hist = registry.histogram("lat")
        handle = hist.bind(op="get")
        handle.observe(1.0)
        handle.observe(2.0)
        assert hist.values(op="get") == [1.0, 2.0]


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.names() == ["x"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_reset_clears_series_keeps_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(3)
        registry.histogram("y").observe(1.0)
        registry.reset()
        assert registry.names() == ["x", "y"]
        assert registry.counter("x").total() == 0
        assert registry.histogram("y").count() == 0


class TestPullCollectors:
    """Hot paths accumulate plain ints; readers pull them on demand."""

    def test_collector_folds_latest_total_on_every_read(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.add_collector(
            "ext", lambda reg: reg.counter("ext.pkts").load(
                state["n"], src="a")
        )
        state["n"] = 5
        assert registry.snapshot()["ext.pkts"]["series"] == {"src=a": 5}
        # load() overwrites — a later read reflects the new total, it
        # does not accumulate on top of the old one.
        state["n"] = 9
        assert 'ext_pkts{src="a"} 9' in registry.render_prometheus()
        assert registry.snapshot()["ext.pkts"]["series"] == {"src=a": 9}

    def test_collector_reregistration_replaces(self):
        registry = MetricsRegistry()
        registry.add_collector(
            "k", lambda reg: reg.counter("c").load(1)
        )
        registry.add_collector(
            "k", lambda reg: reg.counter("c").load(2)
        )
        assert registry.snapshot()["c"]["series"] == {"_": 2}

    def test_iteration_triggers_collection(self):
        registry = MetricsRegistry()
        registry.add_collector(
            "k", lambda reg: reg.counter("c").load(7)
        )
        instruments = {inst.name: inst for inst in registry}
        assert instruments["c"].value() == 7


class TestBufferConservation:
    """captured == released, measured by the obs layer itself."""

    @pytest.mark.parametrize("guarantee", ["lf", "op", "op-strong"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_controller_buffer_conserved(self, guarantee, seed):
        result = run_move_experiment(
            guarantee=guarantee, n_flows=40, seed=seed, observe=True
        )
        assert result.report.aborted is None
        metrics = result.deployment.obs.metrics
        captured = metrics.counter(
            "ctrl.move.buffered_packets_captured").total()
        released = metrics.counter(
            "ctrl.move.buffered_packets_released").total()
        assert captured > 0
        assert captured == released

    def test_dst_nf_buffer_conserved(self):
        result = run_move_experiment(guarantee="op", n_flows=40, observe=True)
        metrics = result.deployment.obs.metrics
        buffered = metrics.counter("nf.packets.buffered").value(nf="inst2")
        released = metrics.counter("nf.packets.released").value(nf="inst2")
        assert buffered > 0
        assert buffered == released

    def test_ng_move_counts_drops(self):
        result = run_move_experiment(guarantee="ng", n_flows=40, observe=True)
        metrics = result.deployment.obs.metrics
        dropped = metrics.counter("nf.packets.dropped").value(
            nf="inst1", mode="silent"
        )
        assert dropped == result.report.packets_dropped
        assert dropped > 0

    def test_chunk_accounting_matches_report(self):
        result = run_move_experiment(guarantee="lf", n_flows=25, observe=True)
        metrics = result.deployment.obs.metrics
        transferred = metrics.counter("ctrl.chunks.transferred").total()
        wire = metrics.counter("ctrl.chunks.wire_bytes").total()
        assert transferred == result.report.total_chunks
        assert wire == result.report.total_wire_bytes
