"""Span-assertion tests for the observability subsystem (tracing half).

The tracer's promise is structural: an observed LF+OP move must produce
exactly one ``move`` root span whose children reproduce Figure 6's phase
order, stamped with the *simulation* clock — and an unobserved run must
allocate no Span objects at all.
"""

import pytest

from repro.harness import run_move_experiment
from repro.nfs.ids import IntrusionDetector
from repro.obs import (
    InMemoryExporter,
    NULL_SPAN,
    Observability,
    Span,
    Tracer,
    render_timeline,
)
from repro.sim import Simulator

pytestmark = pytest.mark.obs


def observed_ids_move(guarantee="op", **kwargs):
    kwargs.setdefault("n_flows", 30)
    kwargs.setdefault("nf_factory", IntrusionDetector)
    return run_move_experiment(guarantee=guarantee, observe=True, **kwargs)


class TestTracerBasics:
    def test_span_tree_parenting_and_export(self, sim):
        exporter = InMemoryExporter()
        tracer = Tracer(sim=sim, exporter=exporter)
        with tracer.span("root", op="x") as root:
            with root.child("leaf-a"):
                pass
            with root.child("leaf-b"):
                pass
        assert [s.name for s in exporter.roots()] == ["root"]
        kids = exporter.children_of(exporter.find("root")[0])
        assert [s.name for s in kids] == ["leaf-a", "leaf-b"]
        assert all(k.parent_id == root.span_id for k in kids)

    def test_span_times_use_sim_clock(self, sim):
        exporter = InMemoryExporter()
        tracer = Tracer(sim=sim, exporter=exporter)
        span = tracer.span("timed")
        sim.schedule(12.5, span.finish)
        sim.run()
        assert span.start == 0.0
        assert span.end == 12.5
        assert span.duration_ms == 12.5

    def test_error_status_on_exception(self, sim):
        exporter = InMemoryExporter()
        tracer = Tracer(sim=sim, exporter=exporter)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert exporter.find("doomed")[0].status == "error"

    def test_disabled_tracer_returns_null_span(self, sim):
        tracer = Tracer(sim=sim, enabled=False)
        span = tracer.span("nope")
        assert span is NULL_SPAN
        assert span.child("kid") is NULL_SPAN


class TestMoveSpanTree:
    """LF+OP move over the IDS scenario: the acceptance span tree."""

    @pytest.fixture(scope="class")
    def observed(self):
        return observed_ids_move("op")

    def test_exactly_one_move_root(self, observed):
        exporter = observed.deployment.obs.exporter
        moves = exporter.find("move")
        assert len(moves) == 1
        assert moves[0].parent_id is None

    def test_root_attributes(self, observed):
        root = observed.deployment.obs.exporter.find("move")[0]
        assert root.attrs["guarantee"] == "loss-free order-preserving"
        assert root.attrs["src"] == "inst1"
        assert root.attrs["dst"] == "inst2"
        assert "10.0.0.0/8" in root.attrs["filter"]
        assert root.attrs["op_id"] == root.span_id

    def test_children_in_figure6_order(self, observed):
        exporter = observed.deployment.obs.exporter
        root = exporter.find("move")[0]
        children = exporter.children_of(root)
        names = [c.name for c in children]
        assert names == [
            "move.events-enabled",
            "move.state-transfer",
            "move.event-flush",
            "move.dst-buffering",
            "move.forwarding-update",
            "move.dst-release",
            "move.cleanup",
        ]
        assert all(c.parent_id == root.span_id for c in children)
        starts = [c.start for c in children]
        assert starts == sorted(starts)
        # Phases do not overlap: each starts when its predecessor ends.
        for earlier, later in zip(children, children[1:]):
            assert later.start >= earlier.end

    def test_two_phase_update_nested_and_ordered(self, observed):
        exporter = observed.deployment.obs.exporter
        fwd = exporter.find("move.forwarding-update")[0]
        steps = exporter.children_of(fwd)
        assert [s.name for s in steps] == [
            "move.phase1-install",
            "move.await-first-packet",
            "move.phase2-install",
            "move.await-last-packet",
        ]
        phase1 = exporter.find("move.phase1-install")[0]
        phase2 = exporter.find("move.phase2-install")[0]
        assert phase1.end <= phase2.start

    def test_transfer_nested_under_state_transfer(self, observed):
        exporter = observed.deployment.obs.exporter
        transfer = exporter.find("move.state-transfer")[0]
        scopes = exporter.children_of(transfer)
        assert [s.name for s in scopes] == ["move.transfer.perflow"]
        assert scopes[0].attrs["chunks"] > 0

    def test_sim_clock_timestamps(self, observed):
        exporter = observed.deployment.obs.exporter
        root = exporter.find("move")[0]
        report = observed.report
        assert root.start == report.started_at
        # Simulated milliseconds, not a wall-clock epoch.
        assert 0.0 < root.start < 10_000.0
        assert root.end > root.start
        for span in exporter.spans:
            assert span.end >= span.start

    def test_phases_derived_from_spans(self, observed):
        """Every report phase equals its phase-span's close time."""
        exporter = observed.deployment.obs.exporter
        report = observed.report
        span_for_mark = {
            "events-enabled": "move.events-enabled",
            "state-transferred": "move.state-transfer",
            "dst-buffering": "move.dst-buffering",
            "phase1-installed": "move.phase1-install",
            "phase2-installed": "move.phase2-install",
            "dst-released": "move.dst-release",
        }
        for mark, span_name in span_for_mark.items():
            span = exporter.find(span_name)[0]
            assert report.phases[mark] == pytest.approx(
                span.end - report.started_at
            )

    def test_timeline_renders_move_tree(self, observed):
        text = render_timeline(observed.deployment.obs.exporter.spans)
        assert "move" in text
        assert "move.state-transfer" in text
        assert "ms" in text


class TestOtherGuaranteeTrees:
    def test_lf_tree_has_reroute_no_forwarding_update(self):
        result = observed_ids_move("lf")
        exporter = result.deployment.obs.exporter
        root = exporter.find("move")[0]
        names = [c.name for c in exporter.children_of(root)]
        assert "move.reroute" in names
        assert "move.forwarding-update" not in names
        flush = exporter.find("move.event-flush")[0]
        transfer = exporter.find("move.state-transfer")[0]
        assert transfer.end <= flush.start

    def test_ng_tree(self):
        result = observed_ids_move("ng")
        exporter = result.deployment.obs.exporter
        root = exporter.find("move")[0]
        names = [c.name for c in exporter.children_of(root)]
        assert names[:3] == ["move.lock", "move.state-transfer", "move.reroute"]

    def test_strong_tree_redirects_first(self):
        result = observed_ids_move("op-strong")
        exporter = result.deployment.obs.exporter
        root = exporter.find("move")[0]
        names = [c.name for c in exporter.children_of(root)]
        assert names[0] == "move.redirect"
        assert "move.await-last-packet" in names


class TestZeroOverheadWhenDisabled:
    def test_unobserved_run_allocates_no_spans(self):
        baseline = Span.allocated
        result = run_move_experiment(
            guarantee="op", n_flows=20, nf_factory=IntrusionDetector,
            observe=False,
        )
        assert Span.allocated == baseline
        assert result.deployment.obs.enabled is False
        assert result.deployment.obs.exporter is None

    def test_disabled_metrics_stay_empty(self):
        result = run_move_experiment(guarantee="op", n_flows=20)
        assert result.deployment.obs.metrics.names() == []

    def test_observation_does_not_change_timing(self):
        plain = run_move_experiment(guarantee="op", n_flows=20, seed=3)
        seen = run_move_experiment(
            guarantee="op", n_flows=20, seed=3, observe=True
        )
        assert plain.report.phases == seen.report.phases
        assert plain.duration_ms == seen.duration_ms


class TestSbSpans:
    def test_rpc_spans_present_and_clocked(self):
        result = observed_ids_move("op")
        exporter = result.deployment.obs.exporter
        gets = exporter.find("sb.get.perflow")
        assert gets and gets[0].attrs["nf"] == "inst1"
        puts = exporter.find("sb.put.perflow")
        assert puts and all(p.attrs["nf"] == "inst2" for p in puts)
        assert all(p.duration_ms > 0 for p in puts)
        installs = exporter.find("sw.install")
        assert len(installs) >= 2
