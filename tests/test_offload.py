"""Data-plane offload: switch-local buffer/drop/release state machines.

The offloaded move fast path must tell the same loss-free /
order-preserving story as the controller-buffered classic path — to the
live auditors, to a ``replay_trace`` of the written ``.trace.jsonl``,
and through a crash-mid-offload abort. And with offload off, the
machinery must be completely inert: the classic timeline is
byte-identical to the seed's.
"""

from __future__ import annotations

import json

import pytest

from repro import Guarantee
from repro.conformance.properties import write_trace_file
from repro.harness import run_move_experiment
from repro.net.packet import reset_uid_counter
from repro.obs.audit import replay_trace


def run_offloaded(guarantee=Guarantee.LOSS_FREE, **kwargs):
    kwargs.setdefault("n_flows", 40)
    kwargs.setdefault("rate_pps", 4000.0)
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("audit", True)
    return run_move_experiment(guarantee, offload=True, **kwargs)


class TestOffloadedMoveGuarantees:
    def test_loss_free_offload_audits_clean(self):
        result = run_offloaded(Guarantee.LOSS_FREE)
        assert result.report.aborted is None
        assert result.loss_free, result.loss_free_detail
        assert result.deployment.obs.violations() == []
        # The window's packets parked at the switch, not the controller.
        assert result.report.packets_buffered_at_switch > 0
        assert result.report.packets_in_events == 0

    def test_order_preserving_offload_audits_clean(self):
        result = run_offloaded(Guarantee.ORDER_PRESERVING)
        assert result.report.aborted is None
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail
        assert result.deployment.obs.violations() == []
        assert result.report.packets_buffered_at_switch > 0

    def test_early_release_composes_per_flow(self):
        result = run_offloaded(Guarantee.LOSS_FREE, early_release=True)
        assert result.report.aborted is None
        assert result.loss_free, result.loss_free_detail
        assert result.deployment.obs.violations() == []

    def test_machine_retired_after_move(self):
        result = run_offloaded(Guarantee.LOSS_FREE)
        assert result.deployment.switch.state_machines() == []


class TestOffloadedTraceReplay:
    def test_replay_sees_switch_records_and_stays_clean(self, tmp_path):
        path = str(tmp_path / "offload.trace.jsonl")
        result = run_offloaded(Guarantee.ORDER_PRESERVING)
        assert result.deployment.obs.violations() == []
        assert write_trace_file(result.deployment.obs, path) > 0

        names = set()
        with open(path) as handle:
            for line in handle:
                entry = json.loads(line)
                if entry.get("type") == "record":
                    names.add(entry.get("name"))
        # The switch-side story is in the trace for offline auditing.
        assert "sw.buffer" in names
        assert "sw.release" in names
        assert "sw.drop" not in names

        pipeline = replay_trace(path)
        assert pipeline.violations == []
        assert pipeline.skipped_entries == []


class TestCrashMidOffload:
    def test_dst_crash_flushes_rings_back_to_source(self):
        # Crash the destination mid-transfer: the abort handler must
        # restore the source, release the switch rings toward the
        # surviving port, and leave a loss-free timeline behind.
        result = run_offloaded(
            Guarantee.LOSS_FREE, fault_plan="seed=5,crash=inst2#20"
        )
        assert result.report.aborted is not None
        assert result.loss_free, result.loss_free_detail
        assert result.deployment.obs.violations() == []
        # Nothing left parked at the switch.
        assert result.deployment.switch.state_machines() == []


class TestOffloadOffIsInert:
    def test_classic_timeline_is_byte_identical(self, monkeypatch):
        monkeypatch.delenv("OPENNF_OFFLOAD", raising=False)

        def run(offload):
            reset_uid_counter()
            return run_move_experiment(
                Guarantee.LOSS_FREE, n_flows=30, rate_pps=3000.0, seed=11,
                offload=offload,
            )

        implicit = run(None)     # seed default: env unset, offload off
        explicit = run(False)
        assert implicit.report.to_dict() == explicit.report.to_dict()
        assert (implicit.deployment.switch.forward_log
                == explicit.deployment.switch.forward_log)

    def test_classic_run_emits_no_switch_machine_records(self):
        result = run_move_experiment(
            Guarantee.LOSS_FREE, n_flows=30, seed=7, audit=True,
            offload=False,
        )
        names = {record.get("name")
                 for record in result.deployment.obs.exporter.records}
        assert not {"sw.buffer", "sw.release", "sw.drop"} & names
        assert result.deployment.switch.state_machines() == []
