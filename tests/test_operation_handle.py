"""Tests for the public Operation handle protocol.

Every northbound call — ``move``, ``copy``, ``share`` — now returns an
:class:`~repro.controller.operation.Operation`: a uniform handle with
``kind``, ``done``, ``report``, ``guarantee``, ``filter``, and
``abort()``. Conflicting operations of any kind are admitted through
the same flow-space conflict check and come back as a
:class:`DeferredOperation` proxy.
"""

import pytest

from repro.cli import _guarantee
from repro.controller import (
    CopyOperation,
    DeferredOperation,
    Guarantee,
    MoveOperation,
    Operation,
    ShareOperation,
)
from repro.flowspace import Filter, FiveTuple
from repro.harness import build_multi_instance_deployment, run_move_experiment
from tests.conftest import make_packet

BROAD = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)


def feed(dep, nf, count=10, net="10.0.1"):
    for index in range(count):
        flow = FiveTuple("%s.%d" % (net, index + 1), 30000 + index,
                         "203.0.113.5", 80)
        nf.receive(make_packet(flow, flags=("SYN",)))
    dep.sim.run()


class TestOperationProtocol:
    def test_move_is_an_operation(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 6)
        op = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
        assert isinstance(op, Operation)
        assert isinstance(op, MoveOperation)
        assert op.kind == "move"
        assert op.filter is BROAD
        assert op.guarantee is Guarantee.LOSS_FREE
        dep.sim.run()
        assert op.done.triggered
        assert op.done.value is op.report

    def test_copy_is_an_operation(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 6)
        op = dep.controller.copy("inst1", "inst2", BROAD)
        assert isinstance(op, Operation)
        assert isinstance(op, CopyOperation)
        assert op.kind == "copy"
        assert op.filter is BROAD
        dep.sim.run()
        assert op.done.triggered
        assert op.report.kind == "copy"

    def test_share_is_an_operation(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 6)
        op = dep.controller.share(["inst1", "inst2"], BROAD)
        assert isinstance(op, Operation)
        assert isinstance(op, ShareOperation)
        assert op.kind == "share"
        assert op.guarantee == "strong"
        # done is the teardown event; stop() completes the operation.
        assert op.done is op.stopped
        dep.sim.run()
        op.stop()
        dep.sim.run()
        assert op.done.triggered

    def test_share_abort_is_stop(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 4)
        op = dep.controller.share(["inst1", "inst2"], BROAD,
                                  consistency="strict")
        dep.sim.run()
        done = op.abort("maintenance window")
        dep.sim.run()
        assert done.triggered
        assert "maintenance window" in op.report.aborted


class TestAbort:
    def test_abort_before_any_work_yields_aborted_report(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 6)
        op = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
        op.abort("changed my mind")
        dep.sim.run()
        assert op.done.triggered
        assert "changed my mind" in op.report.aborted
        # Nothing moved: the source still owns every flow.
        assert a.conn_count() == 6
        assert b.conn_count() == 0

    def test_abort_mid_transfer_restores_source(self):
        result_holder = {}

        def operation(dep):
            op = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
            # Abort while the per-chunk transfer is in flight.
            dep.sim.schedule(6.0, op.abort, "operator cancelled")
            result_holder["op"] = op
            return op

        result = run_move_experiment(n_flows=80, rate_pps=5000.0, seed=3,
                                     operation=operation)
        op = result_holder["op"]
        assert op.done.triggered
        assert "operator cancelled" in result.report.aborted
        # The abort unwound like a destination failure: exported chunks
        # were restored to the source.
        assert any("restored" in note for note in result.report.notes)

    def test_abort_after_completion_is_a_noop(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 4)
        op = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
        dep.sim.run()
        assert op.done.triggered
        assert op.report.aborted is None
        done = op.abort("too late")
        assert done is op.done
        dep.sim.run()
        assert op.report.aborted is None
        assert b.conn_count() == 4


class TestUnifiedAdmission:
    def test_copy_defers_behind_conflicting_move(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 8)
        move = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
        copy = dep.controller.copy("inst2", "inst3", BROAD, scope="per")
        assert isinstance(copy, DeferredOperation)
        assert copy.kind == "deferred"
        assert copy.deferred_kind == "copy"
        assert copy.report is None  # not started yet
        dep.sim.run()
        assert dep.controller.operations_queued_for_conflict == 1
        # copy is not a move; the move-only counter must not tick.
        assert dep.controller.moves_queued_for_conflict == 0
        assert move.done.triggered and copy.done.triggered
        assert copy.report.kind == "copy"
        assert copy.report.started_at >= move.done.value.finished_at
        # The deferred copy found the state where the move left it.
        assert c.conn_count() == 8

    def test_share_defers_behind_conflicting_move(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 6)
        move = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
        share = dep.controller.share(["inst2", "inst3"], BROAD)
        assert isinstance(share, DeferredOperation)
        assert share.guarantee == "strong"
        dep.sim.run()
        assert move.done.triggered
        # The share session launched after the move and is running.
        assert share.operation is not None
        assert isinstance(share.operation, ShareOperation)
        share.operation.stop()
        dep.sim.run()
        assert share.done.triggered

    def test_move_behind_share_waits_for_stop(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 6)
        share = dep.controller.share(["inst1", "inst2"], BROAD)
        dep.sim.run()
        move = dep.controller.move("inst1", "inst3", BROAD, guarantee="lf")
        assert isinstance(move, DeferredOperation)
        dep.sim.run()
        assert not move.done.triggered  # share still holds the flowspace
        share.stop()
        dep.sim.run()
        assert move.done.triggered
        assert c.conn_count() == 6

    def test_disjoint_operations_not_deferred(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 5, net="10.0.1")
        feed(dep, a, 5, net="10.0.2")
        left = Filter({"nw_src": "10.0.1.0/24"}, symmetric=True)
        right = Filter({"nw_src": "10.0.2.0/24"}, symmetric=True)
        move = dep.controller.move("inst1", "inst2", left, guarantee="lf")
        copy = dep.controller.copy("inst1", "inst3", right, scope="per")
        assert isinstance(move, MoveOperation)
        assert isinstance(copy, CopyOperation)
        dep.sim.run()
        assert dep.controller.operations_queued_for_conflict == 0

    def test_abort_while_deferred_never_starts(self):
        dep, (a, b, c) = build_multi_instance_deployment(3)
        feed(dep, a, 6)
        move = dep.controller.move("inst1", "inst2", BROAD, guarantee="lf")
        deferred = dep.controller.copy("inst2", "inst3", BROAD, scope="per")
        deferred.abort("no longer needed")
        dep.sim.run()
        assert move.done.triggered
        assert deferred.done.triggered
        assert deferred.operation is None  # never launched
        assert "no longer needed" in deferred.report.aborted
        assert c.conn_count() == 0


class TestGuaranteeInterchange:
    @pytest.mark.parametrize("alias,expected", [
        ("ng", Guarantee.NONE),
        ("none", Guarantee.NONE),
        ("lf", Guarantee.LOSS_FREE),
        ("loss-free", Guarantee.LOSS_FREE),
        ("op", Guarantee.ORDER_PRESERVING),
        ("lf+op", Guarantee.ORDER_PRESERVING),
        ("op-strong", Guarantee.ORDER_PRESERVING_STRONG),
        (Guarantee.LOSS_FREE, Guarantee.LOSS_FREE),
    ])
    def test_parse_aliases(self, alias, expected):
        assert Guarantee.parse(alias) is expected

    def test_move_accepts_enum(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 4)
        op = dep.controller.move("inst1", "inst2", BROAD,
                                 guarantee=Guarantee.LOSS_FREE)
        dep.sim.run()
        assert op.done.triggered
        assert op.report.guarantee is Guarantee.LOSS_FREE

    def test_report_carries_enum_and_serializes_label(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 4)
        op = dep.controller.move("inst1", "inst2", BROAD, guarantee="op")
        dep.sim.run()
        assert op.report.guarantee is Guarantee.ORDER_PRESERVING
        assert op.report.guarantee_label == "loss-free order-preserving"
        assert op.report.to_dict()["guarantee"] == (
            "loss-free order-preserving"
        )
        assert "loss-free order-preserving" in op.report.summary()

    def test_unknown_guarantee_rejected_before_any_work(self):
        dep, (a, b) = build_multi_instance_deployment(2)
        feed(dep, a, 2)
        with pytest.raises(ValueError):
            dep.controller.move("inst1", "inst2", BROAD,
                                guarantee="best-effort")

    def test_cli_accepts_any_alias(self):
        assert _guarantee("lf+op") is Guarantee.ORDER_PRESERVING
        assert _guarantee("none") is Guarantee.NONE
        with pytest.raises(Exception):
            _guarantee("bogus")
