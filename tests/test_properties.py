"""Property-based tests (hypothesis) for core invariants.

The heavyweight properties are the paper's §5.1 guarantees themselves:
for *any* packet rate, flow count, link latency, and move start time,
a loss-free move loses nothing and an order-preserving move also keeps
per-flow processing order equal to switch forwarding order.
"""

import json
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.flowspace.ip import ip_in_prefix, prefix_covers, prefixes_overlap
from repro.harness import run_move_experiment
from repro.nf import Scope, StateChunk
from repro.nf import merge
from repro.nfs.ids import ScanRecord, TcpReassembler
from repro.net.packet import Packet, reset_uid_counter


octet = st.integers(min_value=0, max_value=255)


@st.composite
def ip_addresses(draw):
    return "%d.%d.%d.%d" % tuple(draw(octet) for _ in range(4))


@st.composite
def prefixes(draw):
    return "%s/%d" % (draw(ip_addresses()), draw(st.integers(0, 32)))


@st.composite
def five_tuples(draw):
    return FiveTuple(
        draw(ip_addresses()),
        draw(st.integers(1, 65535)),
        draw(ip_addresses()),
        draw(st.integers(1, 65535)),
        draw(st.sampled_from([6, 17])),
    )


class TestIpProperties:
    @given(ip_addresses(), prefixes())
    def test_cover_implies_membership(self, ip, prefix):
        if prefix_covers(prefix, ip):
            assert ip_in_prefix(ip, prefix)

    @given(prefixes(), prefixes())
    def test_cover_implies_overlap(self, a, b):
        if prefix_covers(a, b):
            assert prefixes_overlap(a, b)

    @given(prefixes(), prefixes())
    def test_overlap_symmetric(self, a, b):
        assert prefixes_overlap(a, b) == prefixes_overlap(b, a)

    @given(ip_addresses())
    def test_every_ip_in_default_route(self, ip):
        assert ip_in_prefix(ip, "0.0.0.0/0")


class TestFiveTupleProperties:
    @given(five_tuples())
    def test_canonical_direction_independent(self, ft):
        assert ft.canonical() == ft.reversed().canonical()

    @given(five_tuples())
    def test_canonical_idempotent(self, ft):
        assert ft.canonical().canonical() == ft.canonical()

    @given(five_tuples())
    def test_double_reverse_identity(self, ft):
        assert ft.reversed().reversed() == ft


@st.composite
def filters(draw):
    fields = {}
    if draw(st.booleans()):
        fields["nw_src"] = draw(prefixes())
    if draw(st.booleans()):
        fields["nw_dst"] = draw(prefixes())
    if draw(st.booleans()):
        fields["tp_dst"] = draw(st.integers(1, 65535))
    if draw(st.booleans()):
        fields["nw_proto"] = draw(st.sampled_from([6, 17]))
    return Filter(fields, symmetric=draw(st.booleans()))


class TestFilterProperties:
    @given(filters(), five_tuples())
    def test_wildcard_covers_and_matches_everything(self, flt, ft):
        reset_uid_counter()
        packet = Packet(ft)
        wildcard = Filter.wildcard()
        assert wildcard.covers(flt)
        assert wildcard.matches_packet(packet)

    @given(filters(), filters(), five_tuples())
    @settings(max_examples=200)
    def test_covers_is_sound_for_matching(self, broad, narrow, ft):
        """If broad covers narrow, anything narrow matches, broad matches."""
        reset_uid_counter()
        if broad.symmetric != narrow.symmetric:
            return  # covers() compares like-oriented filters
        packet = Packet(ft)
        if broad.covers(narrow) and narrow.matches_packet(packet):
            assert broad.matches_packet(packet)

    @given(filters())
    def test_covers_reflexive(self, flt):
        assert flt.covers(flt)

    @given(filters(), filters())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(five_tuples())
    def test_flow_filter_matches_both_directions(self, ft):
        reset_uid_counter()
        flt = Filter.for_flow(ft)
        assert flt.matches_packet(Packet(ft))
        assert flt.matches_packet(Packet(ft.reversed()))

    @given(five_tuples())
    def test_flowid_roundtrip(self, ft):
        fid = FlowId.for_flow(ft)
        assert FlowId.from_dict(fid.to_dict()) == fid


class TestMergeProperties:
    sets = st.lists(st.integers(0, 50), max_size=20)

    @given(sets, sets)
    def test_union_commutative(self, a, b):
        assert merge.union(a, b) == merge.union(b, a)

    @given(sets)
    def test_union_idempotent(self, a):
        once = merge.union(a, a)
        assert merge.union(once, a) == once

    @given(sets, sets)
    def test_intersection_subset_of_union(self, a, b):
        assert set(merge.intersection(a, b)) <= set(merge.union(a, b))


class TestScanRecordProperties:
    targets = st.lists(
        st.tuples(ip_addresses(), st.integers(1, 65535)), max_size=15
    )

    @given(targets, targets)
    def test_merge_is_union(self, mine, theirs):
        a = ScanRecord("1.2.3.4", 0.0)
        b = ScanRecord("1.2.3.4", 1.0)
        for ip, port in mine:
            a.attempt(ip, port, 0.0)
        for ip, port in theirs:
            b.attempt(ip, port, 1.0)
        a.merge_from(b.to_dict())
        assert a.targets == set(mine) | set(theirs)

    @given(targets)
    def test_roundtrip(self, mine):
        record = ScanRecord("9.9.9.9", 0.0)
        for ip, port in mine:
            record.attempt(ip, port, 2.0)
        clone = ScanRecord.from_dict(record.to_dict())
        assert clone.targets == record.targets


class TestReassemblerProperties:
    @given(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=200),
        st.randoms(use_true_random=False),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60)
    def test_any_arrival_order_reassembles_fully(self, data, rng, seg_size):
        segments = [
            (offset, data[offset : offset + seg_size])
            for offset in range(0, len(data), seg_size)
        ]
        rng.shuffle(segments)
        out = []
        reasm = TcpReassembler(out.append)
        for seq, segment in segments:
            reasm.segment(seq, segment)
        assert "".join(out) == data
        assert reasm.gaps == 0
        assert not reasm.has_hole()

    @given(
        st.text(alphabet=string.ascii_lowercase, min_size=30, max_size=200),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40)
    def test_missing_segment_leaves_hole(self, data, drop_index):
        seg_size = 10
        segments = [
            (offset, data[offset : offset + seg_size])
            for offset in range(0, len(data), seg_size)
        ]
        drop_index = drop_index % (len(segments) - 1)
        kept = [s for i, s in enumerate(segments) if i != drop_index]
        reasm = TcpReassembler()
        for seq, segment in kept:
            reasm.segment(seq, segment)
        if drop_index < len(segments) - 1:
            assert reasm.has_hole()


class TestChunkProperties:
    json_values = st.recursive(
        st.none() | st.booleans() | st.integers(-1000, 1000)
        | st.text(alphabet=string.printable, max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(alphabet=string.ascii_lowercase,
                                  min_size=1, max_size=8),
                          children, max_size=4),
        max_leaves=10,
    )

    @given(st.dictionaries(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
        json_values, max_size=5,
    ))
    def test_chunk_roundtrip(self, data):
        chunk = StateChunk(Scope.PERFLOW, FlowId({"nw_src": "10.0.0.1"}), data)
        again = StateChunk.from_json_bytes(chunk.to_json_bytes())
        assert again.data == json.loads(json.dumps(data))


# Deadline and health-check suppression come from the shared profile
# registered in conftest.py; only the example budget is local.
move_settings = settings(max_examples=12)


class TestMoveGuaranteeProperties:
    """The paper's §5.1 properties, explored over the parameter space."""

    @given(
        seed=st.integers(0, 1000),
        n_flows=st.integers(5, 60),
        rate=st.sampled_from([1000.0, 2500.0, 5000.0, 8000.0]),
        move_fraction=st.floats(0.1, 0.9),
        early_release=st.booleans(),
    )
    @move_settings
    def test_loss_free_move_is_loss_free(
        self, seed, n_flows, rate, move_fraction, early_release
    ):
        reset_uid_counter()
        result = run_move_experiment(
            "lf",
            early_release=early_release,
            n_flows=n_flows,
            rate_pps=rate,
            seed=seed,
            data_packets=8,
            move_at_ms=None,
        )
        result.deployment.sim.run()
        assert result.report.packets_dropped == 0
        assert result.loss_free, result.loss_free_detail

    @given(
        seed=st.integers(0, 1000),
        n_flows=st.integers(5, 40),
        rate=st.sampled_from([1000.0, 2500.0, 6000.0]),
    )
    @move_settings
    def test_order_preserving_move_preserves_order(self, seed, n_flows, rate):
        reset_uid_counter()
        result = run_move_experiment(
            "op", n_flows=n_flows, rate_pps=rate, seed=seed, data_packets=8
        )
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail

    @given(seed=st.integers(0, 200), rate=st.sampled_from([4000.0, 8000.0]))
    @move_settings
    def test_ng_move_is_not_loss_free_under_load(self, seed, rate):
        reset_uid_counter()
        result = run_move_experiment(
            "ng", n_flows=40, rate_pps=rate, seed=seed, data_packets=10
        )
        assert result.report.packets_dropped > 0
        assert not result.loss_free
