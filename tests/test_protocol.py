"""Tests for the southbound wire-protocol codec."""

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.nf import protocol


class TestCodec:
    def test_roundtrip(self):
        message = protocol.get_request(
            "getPerflow", Filter({"nw_src": "10.0.0.0/8"}), compress=True
        )
        again = protocol.decode(protocol.encode(message))
        assert again == message
        assert again["op"] == "getPerflow"
        assert again["opts"] == {"compress": True}

    def test_encoding_is_canonical(self):
        a = protocol.encode({"b": 1, "a": 2})
        b = protocol.encode({"a": 2, "b": 1})
        assert a == b

    def test_message_size_includes_framing(self):
        message = {"op": "x"}
        assert protocol.message_size(message) == (
            len(protocol.encode(message)) + protocol.FRAME_OVERHEAD_BYTES
        )

    def test_richer_filters_cost_more_bytes(self):
        bare = protocol.get_request("getPerflow", Filter.wildcard())
        rich = protocol.get_request(
            "getPerflow",
            Filter({"nw_src": "10.0.0.0/8", "nw_dst": "203.0.113.0/24",
                    "tp_dst": 80, "nw_proto": 6}),
        )
        assert protocol.message_size(rich) > protocol.message_size(bare)

    def test_disabled_opts_omitted(self):
        message = protocol.get_request(
            "getMultiflow", Filter.wildcard(),
            lock_per_chunk=False, compress=False, stream=False,
        )
        assert "opts" not in message

    def test_delete_request_carries_flowids(self):
        flow = FiveTuple("10.0.1.2", 1, "10.0.1.3", 2)
        message = protocol.delete_request(
            "delPerflow", [FlowId.for_flow(flow)]
        )
        assert len(message["flowids"]) == 1
        # More flowids -> bigger message.
        bigger = protocol.delete_request(
            "delPerflow", [FlowId.for_flow(flow)] * 10
        )
        assert protocol.message_size(bigger) > protocol.message_size(message)

    def test_events_request(self):
        message = protocol.events_request(
            "enableEvents", Filter({"tp_dst": 80}), "drop"
        )
        assert message["action"] == "drop"
        no_action = protocol.events_request("disableEvents", Filter.wildcard())
        assert "action" not in no_action

    def test_response_frame(self):
        message = protocol.response("getPerflow", chunks=12)
        assert message["status"] == "ok"
        assert message["chunks"] == 12
