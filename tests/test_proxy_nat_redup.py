"""Tests for the Squid-like proxy, the NAT, the RE pair, and the dummy NF."""

import pytest

from repro.flowspace import Filter, FiveTuple, FlowId
from repro.nf import NFCrash, Scope
from repro.nfs.dummy import DUMMY_CHUNK_BYTES, DummyNF
from repro.nfs.nat import ESTABLISHED, NetworkAddressTranslator
from repro.nfs.proxy import CachingProxy, pull_payload, request_payload
from repro.nfs.redup import RE_TOKEN_HEADER, REDecoder, REEncoder, fingerprint
from tests.conftest import make_packet


def client_flow(i=0, client="10.0.1.2"):
    return FiveTuple(client, 40000 + i, "203.0.113.5", 80)


def send_request(sim, proxy, flow, url, size):
    proxy.receive(make_packet(flow, payload=request_payload(url, size)))
    sim.run()


class TestCachingProxy:
    def test_miss_then_hit(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(0), "/a", 1000)
        send_request(sim, proxy, client_flow(1), "/a", 1000)
        assert proxy.stats["misses"] == 1
        assert proxy.stats["hits"] == 1
        assert proxy.hit_ratio() == 0.5

    def test_transaction_progresses_with_pulls(self, sim):
        proxy = CachingProxy(sim, "squid")
        flow = client_flow()
        send_request(sim, proxy, flow, "/big", 200_000)
        assert len(proxy.transactions) == 1
        proxy.receive(make_packet(flow, payload=pull_payload()))
        sim.run()
        txn = list(proxy.transactions.values())[0]
        assert txn.sent_bytes == 131072  # two chunks of 64 KiB
        for _ in range(2):
            proxy.receive(make_packet(flow, payload=pull_payload()))
        sim.run()
        assert len(proxy.transactions) == 0  # complete

    def test_missing_cache_entry_crashes_in_progress_transfer(self, sim):
        proxy = CachingProxy(sim, "squid")
        flow = client_flow()
        send_request(sim, proxy, flow, "/obj", 500_000)
        del proxy.cache["/obj"]
        proxy.receive(make_packet(flow, payload=pull_payload()))
        sim.run()
        assert proxy.failed
        assert "missing" in proxy.failure_reason

    def test_fin_clears_transaction(self, sim):
        proxy = CachingProxy(sim, "squid")
        flow = client_flow()
        send_request(sim, proxy, flow, "/obj", 500_000)
        proxy.receive(make_packet(flow, flags=("FIN", "ACK")))
        sim.run()
        assert len(proxy.transactions) == 0

    def test_multiflow_keys_by_client_reference(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(0, "10.0.1.2"), "/a", 500_000)
        send_request(sim, proxy, client_flow(1, "10.0.9.9"), "/b", 500_000)
        keys = proxy.state_keys(Scope.MULTIFLOW, Filter({"nw_src": "10.0.1.2"}))
        assert keys == ["/a"]

    def test_multiflow_keys_wildcard_returns_all(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(0), "/a", 1000)
        send_request(sim, proxy, client_flow(1), "/b", 1000)
        keys = proxy.state_keys(Scope.MULTIFLOW, Filter.wildcard())
        assert sorted(keys) == ["/a", "/b"]

    def test_multiflow_keys_by_url(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(0), "/a", 1000)
        send_request(sim, proxy, client_flow(1), "/b", 1000)
        keys = proxy.state_keys(Scope.MULTIFLOW, Filter({"http_url": "/b"}))
        assert keys == ["/b"]

    def test_cache_chunk_size_reflects_object(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(0), "/big", 4_000_000)
        chunk = proxy.export_chunk(Scope.MULTIFLOW, "/big")
        assert chunk.size_bytes > 4_000_000

    def test_cache_import_and_resume(self, sim):
        a = CachingProxy(sim, "a")
        b = CachingProxy(sim, "b")
        flow = client_flow()
        send_request(sim, a, flow, "/obj", 100_000)
        for scope in (Scope.MULTIFLOW, Scope.PERFLOW):
            for key in a.state_keys(scope, Filter.wildcard()):
                b.import_chunk(a.export_chunk(scope, key))
        b.receive(make_packet(flow, payload=pull_payload()))
        sim.run()
        assert not b.failed
        assert b.stats["bytes_served"] > 0

    def test_perflow_transaction_roundtrip(self, sim):
        a = CachingProxy(sim, "a")
        flow = client_flow()
        send_request(sim, a, flow, "/obj", 500_000)
        key = a.state_keys(Scope.PERFLOW, Filter.wildcard())[0]
        chunk = a.export_chunk(Scope.PERFLOW, key)
        assert chunk.data["url"] == "/obj"
        assert chunk.data["sent_bytes"] == 65536

    def test_allflows_stats_export(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(), "/a", 100)
        chunk = proxy.export_chunk(Scope.ALLFLOWS, "stats")
        assert chunk.data["stats"]["requests"] == 1

    def test_delete_cache_entry_by_flowid(self, sim):
        proxy = CachingProxy(sim, "squid")
        send_request(sim, proxy, client_flow(), "/a", 100)
        fid = proxy.cache["/a"].flowid()
        assert proxy.delete_by_flowid(Scope.MULTIFLOW, fid) == 1
        assert "/a" not in proxy.cache


class TestNat:
    def test_syn_creates_entry(self, sim, flow):
        nat = NetworkAddressTranslator(sim, "nat")
        nat.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        entry = nat.entry_for(flow)
        assert entry is not None
        assert entry.external_port >= 10000

    def test_midflow_without_state_is_invalid(self, sim, flow):
        nat = NetworkAddressTranslator(sim, "nat")
        nat.receive(make_packet(flow, flags=("ACK",), payload="x"))
        sim.run()
        assert nat.invalid_packets == 1
        assert nat.entry_for(flow) is None

    def test_state_transitions_and_close(self, sim, flow):
        nat = NetworkAddressTranslator(sim, "nat")
        nat.receive(make_packet(flow, flags=("SYN",)))
        nat.receive(make_packet(flow, flags=("ACK",), payload="data"))
        sim.run()
        assert nat.entry_for(flow).state == ESTABLISHED
        nat.receive(make_packet(flow, flags=("FIN", "ACK")))
        sim.run()
        assert nat.entry_for(flow) is None

    def test_distinct_flows_get_distinct_ports(self, sim):
        nat = NetworkAddressTranslator(sim, "nat")
        flows = [client_flow(i) for i in range(3)]
        for flow in flows:
            nat.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        ports = {nat.entry_for(flow).external_port for flow in flows}
        assert len(ports) == 3

    def test_export_import_preserves_translation(self, sim, flow):
        a = NetworkAddressTranslator(sim, "a")
        b = NetworkAddressTranslator(sim, "b")
        a.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        key = a.state_keys(Scope.PERFLOW, Filter.wildcard())[0]
        chunk = a.export_chunk(Scope.PERFLOW, key)
        b.import_chunk(chunk)
        assert b.entry_for(flow).external_port == a.entry_for(flow).external_port
        # Port allocator moves past imported translations.
        other = client_flow(99)
        b.receive(make_packet(other, flags=("SYN",)))
        sim.run()
        assert b.entry_for(other).external_port > b.entry_for(flow).external_port

    def test_no_multiflow_or_allflows_state(self, sim, flow):
        nat = NetworkAddressTranslator(sim, "nat")
        nat.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        assert nat.state_keys(Scope.MULTIFLOW, Filter.wildcard()) == []
        assert nat.state_keys(Scope.ALLFLOWS, Filter.wildcard()) == []

    def test_continuity_after_move(self, sim, flow):
        a = NetworkAddressTranslator(sim, "a")
        b = NetworkAddressTranslator(sim, "b")
        a.receive(make_packet(flow, flags=("SYN",)))
        sim.run()
        key = a.state_keys(Scope.PERFLOW, Filter.wildcard())[0]
        b.import_chunk(a.export_chunk(Scope.PERFLOW, key))
        a.delete_by_flowid(Scope.PERFLOW, key)
        b.receive(make_packet(flow, flags=("ACK",), payload="more"))
        sim.run()
        assert b.invalid_packets == 0
        assert b.entry_for(flow).packets == 2


class TestRedundancyElimination:
    def test_encoder_tokenizes_repeats(self, sim, flow):
        encoder = REEncoder(sim, "enc")
        first = make_packet(flow, payload="hello world, this is a repeated payload")
        second = make_packet(flow, payload="hello world, this is a repeated payload")
        encoder.encode(first)
        encoder.encode(second)
        assert RE_TOKEN_HEADER not in first.extra_headers
        assert second.extra_headers[RE_TOKEN_HEADER] == fingerprint("hello world, this is a repeated payload")
        assert second.payload == ""
        assert encoder.bytes_saved > 0

    def test_decoder_expands_known_token(self, sim, flow):
        decoder = REDecoder(sim, "dec")
        decoder.receive(make_packet(flow, payload="hello world, this is a repeated payload"))
        encoded = make_packet(flow)
        encoded.extra_headers[RE_TOKEN_HEADER] = fingerprint("hello world, this is a repeated payload")
        decoder.receive(encoded)
        sim.run()
        assert decoder.decoded_packets == 1
        assert decoder.desync_drops == 0

    def test_decoder_desyncs_when_token_precedes_data(self, sim, flow):
        decoder = REDecoder(sim, "dec")
        encoded = make_packet(flow)
        encoded.extra_headers[RE_TOKEN_HEADER] = fingerprint("hello world, this is a repeated payload")
        decoder.receive(encoded)  # arrives before the raw data packet
        decoder.receive(make_packet(flow, payload="hello world, this is a repeated payload"))
        sim.run()
        assert decoder.desync_drops == 1

    def test_store_moves_between_decoders(self, sim, flow):
        a = REDecoder(sim, "a")
        b = REDecoder(sim, "b")
        a.receive(make_packet(flow, payload="payload-1"))
        sim.run()
        chunk = a.export_chunk(Scope.ALLFLOWS, "store")
        b.import_chunk(chunk)
        encoded = make_packet(flow)
        encoded.extra_headers[RE_TOKEN_HEADER] = fingerprint("payload-1")
        b.receive(encoded)
        sim.run()
        assert b.decoded_packets == 1


class TestDummyNF:
    def test_preload_creates_fixed_size_chunks(self, sim):
        dummy = DummyNF(sim, "d")
        tuples = dummy.preload(10)
        assert len(tuples) == 10
        keys = dummy.state_keys(Scope.PERFLOW, Filter.wildcard())
        assert len(keys) == 10
        chunk = dummy.export_chunk(Scope.PERFLOW, keys[0])
        assert chunk.size_bytes == DUMMY_CHUNK_BYTES

    def test_processing_counts(self, sim):
        dummy = DummyNF(sim, "d")
        tuples = dummy.preload(1)
        dummy.receive(make_packet(tuples[0]))
        sim.run()
        key = dummy.state_keys(Scope.PERFLOW, Filter.wildcard())[0]
        assert dummy.flows[key]["counter"] == 1

    def test_import_and_delete(self, sim):
        a = DummyNF(sim, "a")
        b = DummyNF(sim, "b")
        a.preload(2)
        for key in a.state_keys(Scope.PERFLOW, Filter.wildcard()):
            b.import_chunk(a.export_chunk(Scope.PERFLOW, key))
            assert a.delete_by_flowid(Scope.PERFLOW, key) == 1
        assert len(b.flows) == 2
        assert len(a.flows) == 0
