"""Deterministic head+tail trace sampling.

Heads are a pure function of (seed, key) — replayable across runs and
processes; tails always keep the complete causal trace of aborted,
slow, or auditor-flagged operations, including late resurrection from
the discarded ring when a violation only surfaces at finalize.
"""

import pytest

from repro.flowspace.filter import Filter
from repro.harness.deployment import Deployment
from repro.harness.scenarios import run_move_experiment
from repro.net.packet import Packet, reset_uid_counter
from repro.nfs.monitor import AssetMonitor
from repro.obs.sampling import SamplingPolicy, TraceSampler, stable_fraction
from repro.traffic.replay import TraceReplayer
from repro.traffic.traces import TraceConfig, build_university_cloud_trace


pytestmark = pytest.mark.obs


class FakeSpan:
    def __init__(self, span_id, trace_id=None, duration_ms=0.0):
        self.span_id = span_id
        self.duration_ms = duration_ms
        self.attrs = {} if trace_id is None else {"trace_id": trace_id}


class FakeExporter:
    def __init__(self):
        self.spans = []
        self.records = []

    def export_span(self, span):
        self.spans.append(span)

    def export_record(self, record):
        self.records.append(record)


def run_op(sampler, trace_id, aborted=None, duration_ms=1.0, extra=0):
    """Feed one operation (root span + records + op.end) through."""
    sampler.export_span(FakeSpan(trace_id, trace_id, duration_ms))
    for index in range(extra):
        sampler.export_record(
            {"name": "nf.process", "trace_id": trace_id, "uid": index}
        )
    end = {"name": "op.end", "trace_id": trace_id}
    if aborted is not None:
        end["aborted"] = aborted
    sampler.export_record(end)


class TestStableFraction:
    def test_deterministic_and_uniform_range(self):
        draws = [stable_fraction(("op", index), seed=3) for index in range(64)]
        assert draws == [stable_fraction(("op", index), seed=3)
                        for index in range(64)]
        assert all(0.0 <= draw < 1.0 for draw in draws)

    def test_seed_changes_the_draw(self):
        keys = [("op", index) for index in range(64)]
        assert [stable_fraction(key, 0) for key in keys] != \
            [stable_fraction(key, 1) for key in keys]


class TestSamplingPolicy:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            SamplingPolicy(head_rate=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy(flow_rate=-0.1)

    def test_flow_rate_defaults_to_head_rate(self):
        assert SamplingPolicy(head_rate=0.25).flow_rate == 0.25
        assert SamplingPolicy(head_rate=0.25, flow_rate=0.5).flow_rate == 0.5


class TestTraceSampler:
    def test_head_rate_zero_discards_clean_ops(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=0.0))
        run_op(sampler, trace_id=1, extra=3)
        assert base.spans == [] and base.records == []
        stats = sampler.stats()
        assert stats["ops_seen"] == 1 and stats["ops_discarded"] == 1

    def test_head_rate_one_keeps_everything_in_order(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=1.0))
        run_op(sampler, trace_id=1, extra=2)
        assert [span.span_id for span in base.spans] == [1]
        assert [record["name"] for record in base.records] == \
            ["nf.process", "nf.process", "op.end"]

    def test_head_decisions_are_seed_deterministic(self):
        decisions = [
            TraceSampler(FakeExporter(),
                         SamplingPolicy(head_rate=0.3, seed=9)
                         ).keep_op_head(tid)
            for tid in range(100)
        ]
        again = [
            TraceSampler(FakeExporter(),
                         SamplingPolicy(head_rate=0.3, seed=9)
                         ).keep_op_head(tid)
            for tid in range(100)
        ]
        assert decisions == again
        assert any(decisions) and not all(decisions)

    def test_aborted_op_always_kept(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=0.0))
        run_op(sampler, trace_id=1, aborted="boom", extra=2)
        assert len(base.records) == 3
        assert sampler.stats()["ops_kept_tail"] == 1

    def test_slow_op_kept_by_duration_rule(self):
        base = FakeExporter()
        sampler = TraceSampler(
            base, SamplingPolicy(head_rate=0.0, slow_ms=50.0)
        )
        run_op(sampler, trace_id=1, duration_ms=49.9)
        run_op(sampler, trace_id=2, duration_ms=50.0)
        kept = {span.span_id for span in base.spans}
        assert kept == {2}
        assert sampler.stats()["ops_kept_tail"] == 1

    def test_flag_before_decision_wins(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=0.0))
        sampler.export_span(FakeSpan(1, 1))
        sampler.flag(1)
        sampler.export_record({"name": "op.end", "trace_id": 1})
        assert [span.span_id for span in base.spans] == [1]

    def test_late_flag_resurrects_from_discarded_ring(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=0.0))
        run_op(sampler, trace_id=1, extra=2)
        assert base.records == []
        sampler.flag(1)  # e.g. a violation surfacing at auditor finalize
        assert [record["name"] for record in base.records] == \
            ["nf.process", "nf.process", "op.end"]
        stats = sampler.stats()
        assert stats["ops_resurrected"] == 1
        assert stats["ops_discarded"] == 0
        # Late entries for a kept op now pass straight through.
        sampler.export_record({"name": "late", "trace_id": 1})
        assert base.records[-1]["name"] == "late"

    def test_discarded_ring_is_bounded(self):
        sampler = TraceSampler(
            FakeExporter(), SamplingPolicy(head_rate=0.0, keep_discarded=2)
        )
        for tid in (1, 2, 3):
            run_op(sampler, trace_id=tid)
        assert list(sampler._discarded) == [2, 3]
        # The evicted op can no longer be resurrected (no entries kept)
        # but flagging it is still harmless.
        sampler.flag(1)
        assert sampler.stats()["ops_resurrected"] == 0

    def test_flow_records_head_sampled_without_trace_id(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(flow_rate=0.0))
        sampler.export_record({"name": "nf.process", "flow": "a"})
        assert base.records == []
        assert sampler.records_sampled_out == 1
        keep_all = TraceSampler(FakeExporter(), SamplingPolicy(flow_rate=1.0))
        assert keep_all.keep_flow("a") and keep_all.keep_flow("b")
        # Records with neither trace id nor flow pass straight through.
        sampler.export_record({"name": "loose"})
        assert base.records == [{"name": "loose"}]

    def test_flow_memo_is_bounded_and_recomputable(self):
        sampler = TraceSampler(
            FakeExporter(), SamplingPolicy(flow_rate=0.5, max_flow_memo=4)
        )
        verdicts = {key: sampler.keep_flow(key) for key in "abcdefgh"}
        assert len(sampler._flow_memo) == 4
        # Decisions past the memo cap are identical when recomputed —
        # the memo is an optimization, never a behavior change.
        assert all(sampler.keep_flow(key) == verdict
                   for key, verdict in verdicts.items())

    def test_finalize_keeps_open_ops_and_reports_stats(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=0.0))
        sampler.export_span(FakeSpan(1, 1))
        sampler.export_record({"name": "nf.process", "trace_id": 1})
        stats = sampler.finalize()
        assert sampler.finalized
        assert stats["ops_kept_open"] == 1 and stats["ops_kept"] == 1
        assert len(base.spans) == 1 and len(base.records) == 1

    def test_spans_without_trace_id_bypass_sampling(self):
        base = FakeExporter()
        sampler = TraceSampler(base, SamplingPolicy(head_rate=0.0))
        sampler.export_span(FakeSpan(7))
        assert [span.span_id for span in base.spans] == [7]


class TestObservabilityIntegration:
    def _move(self, **deployment_kwargs):
        reset_uid_counter()
        return run_move_experiment(
            "lf", n_flows=20, seed=5,
            deployment_kwargs=deployment_kwargs,
        )

    def test_packet_gate_only_without_taps(self):
        gated = self._move(sampling=SamplingPolicy(head_rate=0.1, seed=1))
        obs = gated.deployment.obs
        assert obs.packet_gate == obs.sampling.keep_flow
        # Auditors need the full stream: the gate must stay off and the
        # sampler filters at the storage layer instead.
        audited = self._move(
            audit=True, sampling=SamplingPolicy(head_rate=0.1, seed=1)
        )
        assert audited.deployment.obs.packet_gate is None

    def test_gate_drops_unsampled_flows_at_source(self):
        result = self._move(sampling=SamplingPolicy(flow_rate=0.2, seed=1))
        obs = result.deployment.obs
        sampler = obs.sampling
        flows = {
            record["flow"] for record in obs.exporter.records
            if record.get("name") == "nf.process"
        }
        assert flows  # some flows were sampled in
        assert all(sampler.keep_flow(flow) for flow in flows)
        # Gated at the source: unsampled records were never built, so
        # the storage-layer counter stays untouched.
        assert sampler.records_sampled_out == 0

    def test_gate_verdict_memoized_per_gate_on_the_tuple(self):
        dep = Deployment(sampling=SamplingPolicy(flow_rate=0.2, seed=1))
        dep.add_nf(AssetMonitor(dep.sim, "inst1"))
        dep.set_default_route("inst1")
        trace = build_university_cloud_trace(
            TraceConfig(seed=5, n_flows=10, data_packets=4)
        )
        TraceReplayer(dep.sim, dep.inject, trace.packets,
                      rate_pps=5000.0).start()
        dep.sim.run()
        gate = dep.obs.packet_gate
        # Blueprints share their FiveTuple objects with the packets they
        # built, so the gate's per-flow verdicts are visible here.
        tuples = list({
            id(bp.five_tuple): bp.five_tuple for bp in trace.packets
        }.values())
        cached = [t for t in tuples if t._gate_keep is not None]
        assert cached
        # Every cached verdict is tagged with *this* deployment's gate
        # (a stale gate from another run must never be trusted) and
        # agrees with a fresh, memo-free recomputation.
        for five_tuple in cached:
            gate_tag, flow = five_tuple._gate_keep
            assert gate_tag is gate
            assert (flow is not None) == gate(Packet(five_tuple).flow_key())

    def test_audit_tap_sees_full_stream_while_store_is_sampled(self):
        result = self._move(
            audit=True,
            sampling=SamplingPolicy(head_rate=0.0, flow_rate=0.0, seed=1),
        )
        obs = result.deployment.obs
        assert obs.violations() == []
        stored_packet_records = [
            record for record in obs.exporter.records
            if record.get("name") == "nf.process"
        ]
        assert stored_packet_records == []
        assert obs.sampling.records_sampled_out > 0
        # The flight recorder taps *above* the sampler: it retained the
        # per-packet records the stored exporter sampled out.
        recorded = sum(len(ring) for ring in obs.recorder._records.values())
        assert recorded > 0

    def test_clean_move_trace_respects_head_rate(self):
        result = self._move(sampling=SamplingPolicy(head_rate=0.0, seed=1))
        obs = result.deployment.obs
        stats = obs.flush_sampling()
        assert stats["ops_seen"] >= 1
        assert stats["ops_kept_head"] == 0
        op_ends = [record for record in obs.exporter.records
                   if record.get("name") == "op.end"]
        assert op_ends == []

    def test_aborted_move_survives_sampling(self):
        def operation(dep):
            op = dep.controller.move(
                "inst1", "inst2",
                Filter({"nw_src": "10.0.0.0/8"}, symmetric=True),
            )
            dep.sim.schedule(0.05, lambda: op.abort("test abort"))
            return op

        reset_uid_counter()
        result = run_move_experiment(
            "lf", n_flows=20, seed=5, operation=operation,
            deployment_kwargs={
                "sampling": SamplingPolicy(head_rate=0.0, seed=1),
            },
        )
        obs = result.deployment.obs
        obs.flush_sampling()
        op_ends = [record for record in obs.exporter.records
                   if record.get("name") == "op.end"]
        assert any(record.get("aborted") for record in op_ends)
        assert obs.sampling.ops_kept_tail >= 1
