"""Tests for the sharded control plane.

Covers the shard map (determinism, orientation normalization, prefix
bucketing, balance), the single-shard == classic-controller timeline
guarantee, the parallelism win (disjoint operations no longer serialize
through one inbox), the cross-shard ownership handshake (including
abort-mid-handoff), and the shared registration view.
"""

import dataclasses

from repro.controller.controller import OpenNFController
from repro.controller.sharding import ShardMap, ShardedControlPlane
from repro.flowspace import Filter, FiveTuple
from repro.harness import Deployment
from repro.net.packet import reset_uid_counter
from repro.nfs.dummy import DummyNF
from repro.conformance import run_schedule
from repro.conformance.schedule import BurstSpec, OpSpec, ScheduleSpec

import pytest


class TestShardMap:
    def test_deterministic(self):
        m = ShardMap(4)
        flt = Filter({"nw_src": "172.16.0.0/16"}, symmetric=True)
        assert m.shard_for_filter(flt) == m.shard_for_filter(flt)
        assert ShardMap(4).shard_for_filter(flt) == m.shard_for_filter(flt)

    def test_orientations_of_one_flow_agree(self):
        m = ShardMap(8)
        flow = FiveTuple("10.0.1.2", 1234, "203.0.113.5", 80)
        fwd = Filter.for_flow(flow, symmetric=False)
        rev = Filter.for_flow(flow.reversed(), symmetric=False)
        sym = Filter.for_flow(flow, symmetric=True)
        packet_shard = m.shard_for_headers(flow.headers())
        assert (m.shard_for_filter(fwd) == m.shard_for_filter(rev)
                == m.shard_for_filter(sym) == packet_shard)

    def test_adjacent_prefixes_cycle_shards(self):
        m = ShardMap(4)
        shards = [
            m.shard_for_filter(
                Filter({"nw_src": "172.%d.0.0/16" % (16 + i)},
                       symmetric=True)
            )
            for i in range(8)
        ]
        # Consecutive /16s land on consecutive shards (round-robin), so
        # a bench splitting traffic across subnets balances perfectly.
        assert shards == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_wildcard_goes_to_shard_zero(self):
        m = ShardMap(4)
        assert m.shard_for_filter(Filter.wildcard()) == 0
        assert m.shard_for_filter(Filter({"nw_proto": 6})) == 0

    def test_exact_flow_balance_roughly_uniform(self):
        m = ShardMap(4)
        counts = [0, 0, 0, 0]
        for i in range(400):
            flow = FiveTuple("10.%d.%d.%d" % (i % 7, i % 11, 1 + i % 250),
                             20000 + i, "203.0.113.5", 80)
            counts[m.shard_for_headers(flow.headers())] += 1
        assert min(counts) > 400 // 4 // 2  # no shard starves

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardMap(0)


def _run_move(controller_kind, n_flows=60):
    """One preloaded DummyNF move; returns (report, deployment)."""
    reset_uid_counter()
    dep = Deployment()
    if controller_kind == "plane":
        dep.controller = ShardedControlPlane(
            dep.sim, switch=dep.switch, shards=1, obs=dep.obs
        )
    src = DummyNF(dep.sim, "inst1")
    dst = DummyNF(dep.sim, "inst2")
    dep.add_nf(src)
    dep.add_nf(dst)
    src.preload(n_flows, base_ip="172.16.0.0")
    flt = Filter({"nw_src": "172.16.0.0/16"}, symmetric=True)
    op = dep.controller.move("inst1", "inst2", flt, guarantee="lf")
    dep.run()
    assert op.done.triggered
    return op.report, dep


class TestSingleShardIdentical:
    def test_deployment_shards_1_is_the_classic_controller(self):
        dep = Deployment(shards=1)
        assert isinstance(dep.controller, OpenNFController)
        assert dep.controller.plane is None

    def test_one_replica_plane_timeline_matches_classic(self):
        classic, _ = _run_move("classic")
        plane, dep = _run_move("plane")
        assert dataclasses.asdict(plane) == dataclasses.asdict(classic)
        assert dep.controller.cross_shard_operations == 0


class TestParallelism:
    def _two_moves(self, shards):
        reset_uid_counter()
        dep = Deployment(shards=shards)
        nfs = {}
        for name in ("inst1", "inst2", "inst3", "inst4"):
            nfs[name] = DummyNF(dep.sim, name)
            dep.add_nf(nfs[name])
        # 172.16/16 homes on shard 0, 172.17/16 on shard 1.
        nfs["inst1"].preload(120, base_ip="172.16.0.0")
        nfs["inst3"].preload(120, base_ip="172.17.0.0")
        left = Filter({"nw_src": "172.16.0.0/16"}, symmetric=True)
        right = Filter({"nw_src": "172.17.0.0/16"}, symmetric=True)
        op1 = dep.controller.move("inst1", "inst2", left, guarantee="lf")
        op2 = dep.controller.move("inst3", "inst4", right, guarantee="lf")
        dep.run()
        assert op1.done.triggered and op2.done.triggered
        return op1.report.duration_ms, op2.report.duration_ms

    def test_disjoint_moves_stop_serializing_across_shards(self):
        """One inbox serializes chunk handling; two inboxes don't.

        Two concurrent 120-chunk moves through the classic controller
        interleave in one ChunkPump, stretching both; on a 2-shard
        plane each move owns a replica and runs at solo speed.
        """
        classic = self._two_moves(shards=1)
        sharded = self._two_moves(shards=2)
        solo_report, _ = _run_move("classic", n_flows=120)
        solo = solo_report.duration_ms
        assert max(sharded) < max(classic) * 0.75
        assert max(sharded) < solo * 1.2
        assert max(classic) > solo * 1.5


def _cross_shard_spec(second_op):
    # 10.0.1.0/24 homes on shard 1; 10.0.0.0/8 homes on shard 0 and
    # intersects it -> the second operation needs the handshake.
    return ScheduleSpec(
        nf="monitor",
        seed=11,
        n_flows=6,
        data_packets=3,
        shards=2,
        ops=[
            OpSpec(kind="move", at_ms=6.0, src="inst1", dst="inst2",
                   prefix="10.0.1.0/24", guarantee="lf"),
            second_op,
        ],
        bursts=[BurstSpec(at_ms=8.0, client="10.0.1.77", port=40000,
                          packets=3)],
    )


class TestCrossShard:
    def test_cross_shard_move_audits_clean(self):
        spec = _cross_shard_spec(
            OpSpec(kind="move", at_ms=7.0, src="inst2", dst="inst1",
                   prefix="10.0.0.0/8", guarantee="lf")
        )
        result = run_schedule(spec, keep_deployment=True)
        assert result.ok, result.summary()
        plane = result.deployment.controller
        assert plane.cross_shard_operations >= 1
        assert plane.handoffs_completed >= 1

    def test_cross_shard_copy_audits_clean(self):
        spec = _cross_shard_spec(
            OpSpec(kind="copy", at_ms=7.0, src="inst2", dst="inst1",
                   prefix="10.0.0.0/8", scope="multi")
        )
        result = run_schedule(spec, keep_deployment=True)
        assert result.ok, result.summary()
        assert result.deployment.controller.cross_shard_operations >= 1

    def test_cross_shard_share_audits_clean(self):
        spec = _cross_shard_spec(
            OpSpec(kind="share", at_ms=7.0, src="inst1", dst="inst2",
                   prefix="10.0.0.0/8", guarantee="strong",
                   scope="multi", stop_at_ms=30.0)
        )
        result = run_schedule(spec, keep_deployment=True)
        assert result.ok, result.summary()
        assert result.deployment.controller.cross_shard_operations >= 1

    def test_handoff_transfers_ownership_persistently(self):
        dep = Deployment(shards=2)
        nfs = {}
        for name in ("inst1", "inst2", "inst3", "inst4"):
            nfs[name] = DummyNF(dep.sim, name)
            dep.add_nf(nfs[name])
        nfs["inst3"].preload(40, base_ip="172.17.0.0")
        plane = dep.controller
        right = Filter({"nw_src": "172.17.0.0/16"}, symmetric=True)
        assert plane.shard_map.shard_for_filter(right) == 1
        op1 = dep.controller.move("inst3", "inst4", right, guarantee="lf")
        # Overlapping op homed on shard 0 while op1 runs on shard 1.
        results = []
        dep.sim.schedule(1.0, lambda: results.append(
            dep.controller.move("inst4", "inst2", Filter({"nw_proto": 6}))))
        dep.run()
        op2 = results[0]
        assert op1.done.triggered and op2.done.triggered
        assert plane.handoffs_completed == 1
        # Shard 0 now owns the transferred flow space: traffic that
        # previously routed to shard 1 by hash routes to the new owner.
        headers = FiveTuple("172.17.0.9", 10000, "198.18.0.1",
                            80, 6).headers()
        assert plane._route_headers(headers) == 0
        # Operation-lifetime claims are all released.
        assert plane._claims == []

    def test_abort_mid_handshake_resolves_without_handoff(self):
        dep = Deployment(shards=2)
        nfs = {}
        for name in ("inst1", "inst2", "inst3", "inst4"):
            nfs[name] = DummyNF(dep.sim, name)
            dep.add_nf(nfs[name])
        nfs["inst3"].preload(200, base_ip="172.17.0.0")
        right = Filter({"nw_src": "172.17.0.0/16"}, symmetric=True)
        op1 = dep.controller.move("inst3", "inst4", right, guarantee="lf")
        holder = []
        dep.sim.schedule(1.0, lambda: holder.append(
            dep.controller.move("inst4", "inst2", Filter({"nw_proto": 6}))))
        # Abort while the cross-shard op is still waiting on op1.
        dep.sim.schedule(2.0, lambda: holder[0].abort("changed my mind"))
        dep.run()
        op2 = holder[0]
        assert op1.done.triggered and op2.done.triggered
        assert op2.operation is None
        assert "aborted while deferred" in op2.report.aborted
        assert dep.controller.handoffs_completed == 0
        assert dep.controller._ownership == []
        # Every replica's admission table drained.
        for replica in dep.controller.replicas:
            assert replica._admission == {}


class TestSharedView:
    def test_registration_visible_on_every_replica(self):
        dep = Deployment(shards=4)
        for name in ("inst1", "inst2", "inst3"):
            dep.add_nf(DummyNF(dep.sim, name))
        plane = dep.controller
        homes = {plane.shard_map.shard_for_name(n)
                 for n in ("inst1", "inst2", "inst3")}
        assert len(homes) > 1  # names spread across home shards
        for replica in plane.replicas:
            assert set(replica.clients) == {"inst1", "inst2", "inst3"}
            assert replica.instance_at_port("inst2") == "inst2"

    def test_duplicate_port_rejected_across_replicas(self):
        dep = Deployment(shards=4)
        plane = dep.controller
        plane.register_nf(DummyNF(dep.sim, "inst1"), port="shared-port")
        # Pick a name homed on a different replica than inst1's.
        other = next(
            "other%d" % i for i in range(32)
            if plane.shard_map.shard_for_name("other%d" % i)
            != plane.shard_map.shard_for_name("inst1")
        )
        with pytest.raises(ValueError, match="already claimed"):
            plane.register_nf(DummyNF(dep.sim, other), port="shared-port")

    def test_interest_removal_is_visible_everywhere(self):
        dep = Deployment(shards=2)
        dep.add_nf(DummyNF(dep.sim, "inst1"))
        plane = dep.controller
        handle = plane.add_event_interest("inst1", None, lambda e: None)
        assert all(r._event_interests for r in plane.replicas)
        plane.replicas[1].remove_interest(handle)
        assert all(not r._event_interests for r in plane.replicas)
