"""Tests for the discrete-event simulator kernel."""

import pytest

from repro.sim import Event, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_runs_callback_at_time(self, sim):
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_callbacks_run_in_time_order(self, sim):
        seen = []
        sim.schedule(10.0, lambda: seen.append("b"))
        sim.schedule(5.0, lambda: seen.append("a"))
        sim.schedule(15.0, lambda: seen.append("c"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_same_time_callbacks_run_fifo(self, sim):
        seen = []
        for label in ("first", "second", "third"):
            sim.schedule(3.0, lambda l=label: seen.append(l))
        sim.run()
        assert seen == ["first", "second", "third"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_zero_delay_runs_at_current_time(self, sim):
        seen = []
        sim.schedule(0.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.0]

    def test_callback_args_passed(self, sim):
        seen = []
        sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, "x")
        sim.run()
        assert seen == [(1, "x")]

    def test_nested_scheduling(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(2.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [3.0]

    def test_cancelled_entry_does_not_run(self, sim):
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("x"))
        handle.cancel()
        sim.run()
        assert seen == []

    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(100.0, lambda: None)
        sim.run(until=40.0)
        assert sim.now == 40.0

    def test_run_until_preserves_pending_events(self, sim):
        seen = []
        sim.schedule(100.0, lambda: seen.append("late"))
        sim.run(until=40.0)
        assert seen == []
        sim.run()
        assert seen == ["late"]
        assert sim.now == 100.0

    def test_run_until_past_queue_advances_clock(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_max_events_limits_execution(self, sim):
        seen = []
        for i in range(5):
            sim.schedule(float(i), lambda i=i: seen.append(i))
        sim.run(max_events=2)
        assert seen == [0, 1]

    def test_call_at_absolute_time(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        seen = []
        sim.call_at(12.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.0]

    def test_events_processed_counter(self, sim):
        for i in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3


class TestEvent:
    def test_event_starts_pending(self, sim):
        evt = sim.event("x")
        assert not evt.triggered
        assert not evt.ok

    def test_trigger_sets_value(self, sim):
        evt = sim.event()
        evt.trigger(42)
        assert evt.triggered and evt.ok
        assert evt.value == 42

    def test_value_before_trigger_raises(self, sim):
        evt = sim.event("pending")
        with pytest.raises(SimulationError):
            _ = evt.value

    def test_double_trigger_rejected(self, sim):
        evt = sim.event()
        evt.trigger()
        with pytest.raises(SimulationError):
            evt.trigger()

    def test_fail_stores_exception(self, sim):
        evt = sim.event()
        evt.fail(ValueError("boom"))
        assert evt.triggered and not evt.ok
        with pytest.raises(ValueError):
            _ = evt.value

    def test_fail_requires_exception_instance(self, sim):
        evt = sim.event()
        with pytest.raises(TypeError):
            evt.fail("not an exception")

    def test_callback_after_trigger_runs_immediately(self, sim):
        evt = sim.event()
        evt.trigger("v")
        seen = []
        evt.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_callbacks_fire_on_trigger(self, sim):
        evt = sim.event()
        seen = []
        evt.add_callback(lambda e: seen.append("a"))
        evt.add_callback(lambda e: seen.append("b"))
        evt.trigger()
        assert seen == ["a", "b"]

    def test_timeout_triggers_after_delay(self, sim):
        evt = sim.timeout(7.5, "done")
        sim.run()
        assert evt.value == "done"
        assert sim.now == 7.5

    def test_run_until_triggered_returns_value(self, sim):
        evt = sim.timeout(3.0, "v")
        sim.schedule(10.0, lambda: None)
        assert sim.run_until_triggered(evt) == "v"
        assert sim.now == 3.0

    def test_run_until_triggered_raises_when_queue_drains(self, sim):
        evt = sim.event("never")
        with pytest.raises(SimulationError):
            sim.run_until_triggered(evt)
