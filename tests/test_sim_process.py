"""Tests for generator-based processes."""

import pytest

from repro.sim import AllOf, AnyOf, Process, ProcessKilled, SimulationError, Simulator


class TestBasicProcess:
    def test_numeric_yield_sleeps(self, sim):
        log = []

        def proc():
            log.append(sim.now)
            yield 5.0
            log.append(sim.now)
            yield 2
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0, 5.0, 7.0]

    def test_return_value_in_done_event(self, sim):
        def proc():
            yield 1.0
            return "result"

        process = sim.spawn(proc())
        sim.run()
        assert process.done.value == "result"
        assert process.result == "result"
        assert not process.alive

    def test_body_starts_after_spawn_returns(self, sim):
        log = []

        def proc():
            log.append("ran")
            yield 0.0

        sim.spawn(proc())
        assert log == []  # not yet
        sim.run()
        assert log == ["ran"]

    def test_spawn_requires_generator(self, sim):
        def not_a_generator():
            return 5

        with pytest.raises(TypeError):
            sim.spawn(not_a_generator())

    def test_yield_event_receives_value(self, sim):
        evt = sim.timeout(4.0, "payload")
        got = []

        def proc():
            value = yield evt
            got.append((sim.now, value))

        sim.spawn(proc())
        sim.run()
        assert got == [(4.0, "payload")]

    def test_yield_already_triggered_event(self, sim):
        evt = sim.event()
        evt.trigger("early")
        got = []

        def proc():
            value = yield evt
            got.append(value)

        sim.spawn(proc())
        sim.run()
        assert got == ["early"]

    def test_failed_event_raises_inside_process(self, sim):
        evt = sim.event()
        caught = []

        def proc():
            try:
                yield evt
            except ValueError as exc:
                caught.append(str(exc))

        sim.spawn(proc())
        sim.schedule(1.0, lambda: evt.fail(ValueError("bad")))
        sim.run()
        assert caught == ["bad"]

    def test_join_another_process(self, sim):
        def child():
            yield 5.0
            return "child-result"

        def parent():
            result = yield sim.spawn(child())
            return result

        process = sim.spawn(parent())
        sim.run()
        assert process.result == "child-result"

    def test_unsupported_yield_raises(self, sim):
        def proc():
            yield "nonsense"

        process = sim.spawn(proc())
        sim.run()
        assert not process.done.ok
        assert isinstance(process.done.exception, SimulationError)

    def test_uncaught_exception_fails_done(self, sim):
        def proc():
            yield 1.0
            raise RuntimeError("explode")

        process = sim.spawn(proc())
        sim.run()
        assert not process.done.ok
        assert isinstance(process.done.exception, RuntimeError)


class TestKill:
    def test_kill_raises_inside(self, sim):
        cleaned = []

        def proc():
            try:
                yield 100.0
            except ProcessKilled:
                cleaned.append("cleanup")
                raise

        process = sim.spawn(proc())
        sim.schedule(5.0, lambda: process.kill())
        sim.run()
        assert cleaned == ["cleanup"]
        assert not process.alive
        assert isinstance(process.done.exception, ProcessKilled)

    def test_kill_after_done_is_noop(self, sim):
        def proc():
            yield 1.0
            return "ok"

        process = sim.spawn(proc())
        sim.run()
        process.kill()
        sim.run()
        assert process.result == "ok"


class TestComposites:
    def test_all_of_collects_values_in_order(self, sim):
        results = []

        def proc():
            values = yield AllOf([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            results.append((sim.now, values))

        sim.spawn(proc())
        sim.run()
        assert results == [(5.0, ["slow", "fast"])]

    def test_all_of_empty_resumes_immediately(self, sim):
        results = []

        def proc():
            values = yield AllOf([])
            results.append(values)

        sim.spawn(proc())
        sim.run()
        assert results == [[]]

    def test_any_of_returns_first(self, sim):
        results = []

        def proc():
            index, value = yield AnyOf(
                [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]
            )
            results.append((sim.now, index, value))

        sim.spawn(proc())
        sim.run()
        assert results == [(1.0, 1, "fast")]

    def test_any_of_with_processes(self, sim):
        def child(delay, value):
            yield delay
            return value

        results = []

        def parent():
            index, value = yield AnyOf(
                [sim.spawn(child(9.0, "a")), sim.spawn(child(2.0, "b"))]
            )
            results.append((index, value))

        sim.spawn(parent())
        sim.run()
        assert results == [(1, "b")]

    def test_all_of_propagates_failure(self, sim):
        evt = sim.event()
        caught = []

        def proc():
            try:
                yield AllOf([sim.timeout(1.0), evt])
            except KeyError as exc:
                caught.append(type(exc).__name__)

        sim.spawn(proc())
        sim.schedule(2.0, lambda: evt.fail(KeyError("k")))
        sim.run()
        assert caught == ["KeyError"]
