"""Tests for seeded RNG stream derivation."""

import pytest

from repro.sim.rng import SeededStreams, derive_rng


class TestDeriveRng:
    def test_same_inputs_same_stream(self):
        a = derive_rng(42, "traffic")
        b = derive_rng(42, "traffic")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_independent(self):
        a = derive_rng(42, "traffic")
        b = derive_rng(42, "jitter")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = derive_rng(1, "traffic")
        b = derive_rng(2, "traffic")
        assert a.random() != b.random()

    def test_stable_across_processes(self):
        # CRC32-based mixing, not hash(): the derivation must be stable.
        rng = derive_rng(7, "stable-check")
        assert rng.randrange(1_000_000) == derive_rng(7, "stable-check") \
            .randrange(1_000_000)


class TestSeededStreams:
    def test_stream_cached(self):
        streams = SeededStreams(5)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_isolated(self):
        streams = SeededStreams(5)
        first = streams.stream("a").random()
        # Drawing from another stream does not perturb the first.
        streams.stream("b").random()
        fresh = SeededStreams(5)
        fresh.stream("b")  # create in a different order
        assert fresh.stream("a").random() == first
