"""Tests for the controller-side southbound RPC client."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.nf import EventAction, NFClient, Scope
from repro.nfs.monitor import AssetMonitor
from repro.sim import Simulator
from tests.conftest import make_packet


@pytest.fixture
def wired(sim):
    nf = AssetMonitor(sim, "mon")
    client = NFClient(sim, nf)
    return sim, nf, client


def feed_flows(sim, nf, count=3):
    tuples = []
    for i in range(count):
        five_tuple = FiveTuple("10.0.1.%d" % (i + 1), 1000 + i, "203.0.113.5", 80)
        tuples.append(five_tuple)
        nf.receive(make_packet(five_tuple, flags=("SYN",), payload="GET /"))
    sim.run()
    return tuples


class TestGetPut:
    def test_get_perflow_returns_chunks_after_delay(self, wired):
        sim, nf, client = wired
        feed_flows(sim, nf, 2)
        done = client.get_perflow(Filter.wildcard())
        assert not done.triggered  # requires simulated time
        sim.run()
        chunks = done.value
        assert len(chunks) == 2
        assert all(c.scope is Scope.PERFLOW for c in chunks)
        assert sim.now > 0

    def test_get_with_stream_delivers_incrementally(self, wired):
        sim, nf, client = wired
        feed_flows(sim, nf, 3)
        streamed = []
        done = client.get_perflow(Filter.wildcard(), stream=streamed.append)
        sim.run()
        assert len(streamed) == 3
        assert len(done.value) == 3

    def test_get_respects_filter(self, wired):
        sim, nf, client = wired
        feed_flows(sim, nf, 3)
        done = client.get_perflow(Filter({"nw_src": "10.0.1.2"}, symmetric=True))
        sim.run()
        assert len(done.value) == 1

    def test_put_perflow_installs_state(self, sim):
        src = AssetMonitor(sim, "src")
        dst = AssetMonitor(sim, "dst")
        src_client = NFClient(sim, src)
        dst_client = NFClient(sim, dst)
        feed_flows(sim, src, 2)
        got = src_client.get_perflow(Filter.wildcard())
        sim.run()
        put = dst_client.put_perflow(got.value)
        sim.run()
        assert put.triggered
        assert dst.conn_count() == 2

    def test_del_perflow_removes(self, wired):
        sim, nf, client = wired
        feed_flows(sim, nf, 2)
        got = client.get_perflow(Filter.wildcard())
        sim.run()
        removed = client.del_perflow([c.flowid for c in got.value])
        sim.run()
        assert removed.value == 2
        assert nf.conn_count() == 0

    def test_get_multiflow_and_allflows(self, wired):
        sim, nf, client = wired
        feed_flows(sim, nf, 2)
        multi = client.get_multiflow(Filter({"nw_src": "10.0.0.0/8"}, symmetric=True))
        allf = client.get_allflows()
        sim.run()
        assert len(multi.value) == 2  # two local client assets
        assert len(allf.value) == 1
        assert allf.value[0].data["stats"]["flows"] == 2

    def test_list_flowids(self, wired):
        sim, nf, client = wired
        feed_flows(sim, nf, 3)
        done = client.list_flowids(Scope.PERFLOW, Filter.wildcard())
        sim.run()
        assert len(done.value) == 3

    def test_bigger_transfers_take_longer(self, sim):
        nf_small = AssetMonitor(sim, "s")
        nf_big = AssetMonitor(sim, "b")
        small_client = NFClient(sim, nf_small)
        big_client = NFClient(sim, nf_big)
        feed_flows(sim, nf_small, 1)
        for i in range(30):
            five_tuple = FiveTuple("10.0.2.%d" % (i + 1), 2000 + i, "203.0.113.6", 80)
            nf_big.receive(make_packet(five_tuple, flags=("SYN",)))
        sim.run()
        small_done = small_client.get_perflow(Filter.wildcard())
        big_done = big_client.get_perflow(Filter.wildcard())
        sim.run()
        small_cost = sum(
            nf_small.costs.serialize_ms(c.size_bytes) for c in small_done.value
        )
        big_cost = sum(
            nf_big.costs.serialize_ms(c.size_bytes) for c in big_done.value
        )
        assert big_cost > small_cost


class TestEventsRpc:
    def test_enable_events_round_trip(self, wired):
        sim, nf, client = wired
        done = client.enable_events(Filter.wildcard(), EventAction.DROP)
        assert nf.event_rule_count == 0  # not yet delivered
        sim.run()
        assert done.triggered
        assert nf.event_rule_count == 1

    def test_disable_events_round_trip(self, wired):
        sim, nf, client = wired
        client.enable_events(Filter.wildcard(), EventAction.BUFFER)
        sim.run()
        done = client.disable_events(Filter.wildcard())
        sim.run()
        assert done.triggered
        assert nf.event_rule_count == 0

    def test_disable_events_covered_round_trip(self, wired):
        sim, nf, client = wired
        client.enable_events(Filter({"nw_src": "10.0.1.1"}), EventAction.DROP)
        client.enable_events(Filter({"nw_src": "10.0.1.2"}), EventAction.DROP)
        sim.run()
        client.disable_events_covered(Filter({"nw_src": "10.0.0.0/8"}))
        sim.run()
        assert nf.event_rule_count == 0

    def test_silent_flag_propagates(self, wired, flow):
        sim, nf, client = wired
        client.enable_events(Filter.wildcard(), EventAction.DROP, silent=True)
        sim.run()
        nf.receive(make_packet(flow))
        sim.run()
        assert nf.packets_dropped_silent == 1
