"""Hypothesis stateful machine: random operation sequences stay safe.

Drives a 3-instance deployment through arbitrary interleavings of
traffic bursts and loss-free moves between random instance pairs, and
checks the conservation invariants after every step:

* no packet the switch forwarded is lost or double-processed;
* per-flow packet counters across all instances sum to the number of
  packets processed (state conservation through arbitrary move chains);
* no NF ever crashes;
* every move completes (possibly aborted — never wedged).
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.flowspace import Filter, FiveTuple
from repro.harness import build_multi_instance_deployment, check_loss_free
from repro.net.packet import Packet, reset_uid_counter

INSTANCES = ["inst1", "inst2", "inst3"]
CLIENTS = ["10.0.1.2", "10.0.1.3", "10.0.2.2"]


class MoveMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        reset_uid_counter()
        self.dep, self.nfs = build_multi_instance_deployment(3)
        self.pending_moves = []
        self.flow_counter = 0

    # ------------------------------------------------------------------ rules

    @rule(
        client=st.sampled_from(CLIENTS),
        packets=st.integers(min_value=1, max_value=6),
        new_flow=st.booleans(),
    )
    def traffic_burst(self, client, packets, new_flow):
        if new_flow or self.flow_counter == 0:
            self.flow_counter += 1
        flow = FiveTuple(client, 30000 + self.flow_counter,
                         "203.0.113.5", 80)
        for seq in range(packets):
            self.dep.inject(
                Packet(flow, tcp_flags=("ACK",), seq=seq,
                       created_at=self.dep.sim.now)
            )
        self.dep.sim.run()

    @rule(
        src=st.sampled_from(INSTANCES),
        dst=st.sampled_from(INSTANCES),
        prefix=st.sampled_from(["10.0.0.0/8", "10.0.1.0/24", "10.0.2.0/24"]),
    )
    def lossfree_move(self, src, dst, prefix):
        if src == dst:
            return
        op = self.dep.controller.move(
            src, dst, Filter({"nw_src": prefix}, symmetric=True),
            scope="per", guarantee="lf",
        )
        self.dep.sim.run()
        assert op.done.triggered, "move wedged"
        assert op.done.value.aborted is None

    @rule()
    def quiesce(self):
        self.dep.sim.run(until=self.dep.sim.now + 100.0)
        self.dep.sim.run()

    # -------------------------------------------------------------- invariants

    @invariant()
    def nothing_lost(self):
        if not hasattr(self, "dep"):
            return
        self.dep.sim.run()
        ok, detail = check_loss_free(self.dep.switch, self.nfs)
        assert ok, detail

    @invariant()
    def state_conserved(self):
        if not hasattr(self, "dep"):
            return
        total_counted = sum(
            record.packets
            for nf in self.nfs
            for record in nf.conns.values()
        )
        total_processed = sum(nf.packets_processed for nf in self.nfs)
        assert total_counted == total_processed

    @invariant()
    def no_crashes(self):
        if not hasattr(self, "dep"):
            return
        assert not any(nf.failed for nf in self.nfs)


# Deadline/health-check defaults come from conftest's shared profile.
MoveMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12
)
TestMoveMachine = MoveMachine.TestCase
