"""Tests for the technical-report strong order-preserving move."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.move import Guarantee
from repro.flowspace import Filter
from repro.harness import (
    LOCAL_NET_FILTER,
    build_multi_instance_deployment,
    check_loss_free,
    check_order_preserving,
    run_move_experiment,
)
from repro.net.link import Link
from repro.net.packet import reset_uid_counter
from repro.sim.rng import derive_rng
from repro.traffic import TraceConfig, TraceReplayer, build_university_cloud_trace


class TestStrongOrderPreserving:
    def test_parse_alias(self):
        assert Guarantee.parse("op-strong") is \
            Guarantee.ORDER_PRESERVING_STRONG

    def test_loss_free_and_globally_ordered(self):
        result = run_move_experiment("op-strong", n_flows=60,
                                     rate_pps=4000.0, seed=3)
        assert result.report.aborted is None
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail
        dep = result.deployment
        ok, detail = check_order_preserving(
            dep.switch, [dep.nfs["inst1"], dep.nfs["inst2"]],
            result.replayer.injected, per_flow=False,
        )
        assert ok, detail

    def test_redirect_phase_recorded(self):
        result = run_move_experiment("op-strong", n_flows=30, seed=5)
        phases = result.report.phases
        assert "redirected" in phases
        assert phases["redirected"] < phases["state-transferred"]
        assert "dst-released" in phases

    def test_quiescent_flowspace_completes(self, two_monitor_deployment):
        dep, _src, _dst = two_monitor_deployment
        op = dep.controller.move(
            "prads1", "prads2", Filter.wildcard(), guarantee="op-strong"
        )
        dep.sim.run()
        assert op.done.triggered
        assert op.done.value.aborted is None

    def test_detours_traffic_through_controller(self):
        strong = run_move_experiment("op-strong", n_flows=60,
                                     rate_pps=4000.0, seed=3)
        dep = strong.deployment
        # The redirect rule sent a substantial stream of packet-ins to
        # the controller (the price of not trusting the sw→src path).
        assert dep.controller.packet_ins_received > 50
        assert strong.report.affected_uids

    def test_survives_wire_jitter_loss_free(self):
        """With a reordering sw→src path (the classic variant's excluded
        assumption), strong OP still loses nothing, and every packet the
        controller sequenced is in order."""
        reset_uid_counter()
        dep, (a, b) = build_multi_instance_deployment(2)
        rng = derive_rng(11, "strong-jitter")
        dep.switch._ports["inst1"].link = Link(
            dep.sim, latency_ms=0.2, jitter_ms=0.5, rng=rng
        )
        trace = build_university_cloud_trace(
            TraceConfig(seed=11, n_flows=40, data_packets=15)
        )
        replayer = TraceReplayer(dep.sim, dep.inject, trace.packets, 4000.0)
        replayer.start()
        holder = {}
        dep.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(op=dep.controller.move(
                "inst1", "inst2", LOCAL_NET_FILTER, guarantee="op-strong")),
        )
        dep.sim.run()
        report = holder["op"].done.value
        assert report.aborted is None
        assert report.packets_dropped == 0
        ok, detail = check_loss_free(dep.switch, [a, b])
        assert ok, detail
        # Packets the controller sequenced (processed at the destination)
        # are in switch-arrival order among themselves.
        dst_uids = [uid for (_t, uid) in b.processing_log]
        from repro.harness import switch_forwarding_order

        arrival = switch_forwarding_order(dep.switch, ["inst1", "inst2"],
                                          set(dst_uids))
        assert dst_uids == [uid for uid in arrival if uid in set(dst_uids)]

    @given(seed=st.integers(0, 300),
           rate=st.sampled_from([2000.0, 5000.0]))
    @settings(max_examples=8)
    def test_property_sweep(self, seed, rate):
        reset_uid_counter()
        result = run_move_experiment("op-strong", n_flows=25,
                                     rate_pps=rate, seed=seed,
                                     data_packets=8)
        assert result.loss_free, result.loss_free_detail
        assert result.order_preserving, result.order_detail
