"""Tests for the flow-table capacity limit and its baseline implications."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness import Deployment
from repro.net import LOW_PRIORITY, MID_PRIORITY, Link, Switch, TableFullError
from repro.nfs.monitor import AssetMonitor
from repro.sim import Simulator
from tests.conftest import make_packet


class TestCapacityLimit:
    def test_install_beyond_capacity_fails(self, sim):
        switch = Switch(sim, table_capacity=2)
        switch.attach("a", lambda p: None, Link(sim))
        first = switch.install(Filter({"tp_dst": 1}), ["a"], MID_PRIORITY)
        second = switch.install(Filter({"tp_dst": 2}), ["a"], MID_PRIORITY)
        third = switch.install(Filter({"tp_dst": 3}), ["a"], MID_PRIORITY)
        sim.run()
        assert first.ok and second.ok
        assert not third.ok
        assert isinstance(third.exception, TableFullError)
        assert switch.installs_rejected == 1
        assert len(switch.table) == 2

    def test_replacing_existing_rule_always_allowed(self, sim):
        switch = Switch(sim, table_capacity=1)
        switch.attach("a", lambda p: None, Link(sim))
        switch.attach("b", lambda p: None, Link(sim))
        switch.install(Filter.wildcard(), ["a"], MID_PRIORITY)
        sim.run()
        replace = switch.install(Filter.wildcard(), ["b"], MID_PRIORITY)
        sim.run()
        assert replace.ok
        assert switch.table.find(Filter.wildcard(), MID_PRIORITY).actions == \
            ("b",)

    def test_unbounded_by_default(self, sim):
        switch = Switch(sim)
        switch.attach("a", lambda p: None, Link(sim))
        for port in range(50):
            switch.install(Filter({"tp_dst": port}), ["a"], MID_PRIORITY)
        sim.run()
        assert len(switch.table) == 50

    def test_remove_frees_capacity(self, sim):
        switch = Switch(sim, table_capacity=1)
        switch.attach("a", lambda p: None, Link(sim))
        switch.install(Filter({"tp_dst": 1}), ["a"], MID_PRIORITY)
        sim.run()
        switch.remove(Filter({"tp_dst": 1}), MID_PRIORITY)
        sim.run()
        again = switch.install(Filter({"tp_dst": 2}), ["a"], MID_PRIORITY)
        sim.run()
        assert again.ok


class TestRerouteOnlyHitsCapacity:
    def test_pinning_needs_per_flow_rules(self):
        """The reroute-only baseline pins each existing flow with an
        exact-match rule: with a small TCAM it simply cannot scale,
        while OpenNF's move uses O(1) rules regardless of flow count."""
        from repro.baselines import RerouteOnlyScaler
        from repro.harness import LOCAL_NET_FILTER

        dep = Deployment()
        dep.switch.table_capacity = 10
        src = AssetMonitor(dep.sim, "inst1")
        dst = AssetMonitor(dep.sim, "inst2")
        dep.add_nf(src)
        dep.add_nf(dst)
        dep.set_default_route("inst1")
        for index in range(30):
            flow = FiveTuple("10.0.1.%d" % (index + 1), 30000 + index,
                             "203.0.113.5", 80)
            dep.inject(make_packet(flow, flags=("SYN",)))
        dep.sim.run()

        scaler = RerouteOnlyScaler(dep.controller)
        scaler.scale_out("inst1", "inst2", LOCAL_NET_FILTER)
        dep.sim.run()
        # Pin rules overflowed the table.
        assert dep.switch.installs_rejected > 0

        # An OpenNF move of the same 30 flows needs a single rule: on a
        # fresh switch with the same tiny capacity, nothing is rejected.
        from repro.net.packet import reset_uid_counter

        reset_uid_counter()
        dep2 = Deployment()
        dep2.switch.table_capacity = 10
        src2 = AssetMonitor(dep2.sim, "inst1")
        dst2 = AssetMonitor(dep2.sim, "inst2")
        dep2.add_nf(src2)
        dep2.add_nf(dst2)
        dep2.set_default_route("inst1")
        for index in range(30):
            flow = FiveTuple("10.0.1.%d" % (index + 1), 30000 + index,
                             "203.0.113.5", 80)
            dep2.inject(make_packet(flow, flags=("SYN",)))
        dep2.sim.run()
        op = dep2.controller.move("inst1", "inst2", LOCAL_NET_FILTER,
                                  guarantee="lf")
        dep2.sim.run()
        assert op.done.triggered
        assert op.done.value.aborted is None
        assert dep2.switch.installs_rejected == 0
        assert dst2.conn_count() == 30
