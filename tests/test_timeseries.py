"""Sim-clock windowed time-series, the run snapshot, and the reporter.

The scale story: fixed memory (ring of closed windows), O(1) per
record, a cardinality guard matching the metrics registry, and a
strictly passive reporter that derives per-NF rates from counter
deltas instead of touching the per-packet hot path.
"""

import json
import warnings

import pytest

from repro.harness import run_move_experiment
from repro.obs import ProgressReporter, TimeSeriesHub, format_top, snapshot_top
from repro.obs.timeseries import TimeSeries


pytestmark = pytest.mark.obs


class TestTimeSeries:
    def test_records_fold_into_aligned_windows(self):
        ts = TimeSeries("evt", {}, window_ms=100.0)
        ts.record(10.0, 2.0)
        ts.record(60.0, 4.0)
        ts.record(150.0, 1.0)  # rolls the [0, 100) window into the ring
        closed = ts.windows(include_open=False)
        assert closed == [(0.0, 2, 6.0, 2.0, 4.0, 4.0)]
        start, count, total, vmin, vmax, last = ts.windows()[-1]
        assert (start, count, total) == (100.0, 1, 1.0)

    def test_min_max_last_track_within_a_window(self):
        ts = TimeSeries("depth", {}, kind="gauge", window_ms=100.0)
        for value in (5.0, 1.0, 9.0, 3.0):
            ts.record(40.0, value)
        _start, count, total, vmin, vmax, last = ts.latest()
        assert (count, total, vmin, vmax, last) == (4, 18.0, 1.0, 9.0, 3.0)

    def test_ring_is_bounded(self):
        ts = TimeSeries("evt", {}, window_ms=10.0, max_windows=3)
        for index in range(10):
            ts.record(index * 10.0)
        closed = ts.windows(include_open=False)
        assert len(closed) == 3
        # Oldest evicted first: only the most recent closed windows stay.
        assert [window[0] for window in closed] == [60.0, 70.0, 80.0]

    def test_rate_and_last_value(self):
        ts = TimeSeries("evt", {}, window_ms=200.0)
        assert ts.rate_per_s() == 0.0
        assert ts.last_value() is None
        ts.record(0.0)
        ts.record(1.0)
        assert ts.rate_per_s() == pytest.approx(2 / 0.2)
        assert ts.last_value() == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("x", {}, kind="histogram")
        with pytest.raises(ValueError):
            TimeSeries("x", {}, window_ms=0.0)


class TestTimeSeriesHub:
    def test_series_identity_per_name_and_labels(self):
        hub = TimeSeriesHub()
        a = hub.series("evt", shard="0")
        assert hub.series("evt", shard="0") is a
        assert hub.series("evt", shard="1") is not a

    def test_cardinality_guard_collapses_overflow(self):
        hub = TimeSeriesHub(max_series=2)
        hub.series("evt", shard="0")
        hub.series("evt", shard="1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            overflow = hub.series("evt", shard="2")
            again = hub.series("evt", shard="3")
        assert overflow is again
        assert overflow.labels == {"overflow": "other"}
        assert hub.series_overflowed == 2
        # One warning only, however many label sets overflow.
        assert len([w for w in caught
                    if issubclass(w.category, RuntimeWarning)]) == 1

    def test_snapshot_and_jsonl_roundtrip(self, tmp_path):
        hub = TimeSeriesHub(window_ms=100.0)
        hub.inc("evt", shard="0")
        hub.gauge("depth", 7.0, shard="0")
        entries = hub.snapshot()
        assert {entry["name"] for entry in entries} == {"evt", "depth"}
        path = tmp_path / "ts.jsonl"
        written = hub.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert written == len(lines) == len(entries)
        parsed = [json.loads(line) for line in lines]
        assert all(entry["type"] == "timeseries" for entry in parsed)

    def test_render_prometheus_shapes(self):
        hub = TimeSeriesHub(window_ms=100.0)
        hub.inc("ctrl.events", shard="0")
        hub.gauge("inbox.depth", 3.0, shard="0")
        text = hub.render_prometheus()
        assert 'ctrl_events_rate_per_s{shard="0"} 10' in text
        assert 'ctrl_events_total{shard="0"} 1' in text
        assert 'inbox_depth_last{shard="0"} 3' in text
        assert 'inbox_depth_avg{shard="0"} 3' in text


class TestSnapshotTopAndReporter:
    def _run(self, **kwargs):
        frames = []
        reporters = []

        def on_deployment(dep):
            reporter = ProgressReporter(
                dep, interval_ms=25.0, sink=frames.append
            )
            reporters.append(reporter.start())
            assert reporter.start() is reporter  # idempotent re-arm

        result = run_move_experiment(
            "lf", n_flows=20, seed=5, telemetry=True,
            on_deployment=on_deployment, **kwargs
        )
        return result, frames, reporters[0]

    def test_snapshot_top_reads_without_mutating(self):
        result, _frames, _reporter = self._run()
        dep = result.deployment
        first = snapshot_top(dep)
        second = snapshot_top(dep)
        assert first == second
        assert first["time_ms"] == dep.sim.now
        assert set(first["nfs"]) == {"inst1", "inst2"}
        assert 0 in first["shards"]
        assert "sampling" in first

    def test_reporter_ticks_derive_rates_and_disarm(self):
        result, frames, reporter = self._run()
        dep = result.deployment
        assert reporter.ticks == len(frames) >= 2
        # Rates come from counter deltas between ticks, and packets
        # flowed to inst1 during the run, so some tick saw a rate.
        rates = [frame["nfs"]["inst1"]["rate_per_s"] for frame in frames]
        assert all(rate >= 0.0 for rate in rates)
        assert any(rate > 0.0 for rate in rates)
        # The same rates land in the hub as a gauge series.
        assert "nf_processed_rate_last" in \
            dep.obs.timeseries.render_prometheus()
        # The reporter disarmed on the tick that found the queue empty
        # (it alone can never keep sim.run() alive), and the run ended.
        assert not reporter._armed
        assert not dep.sim.pending

    def test_format_top_renders_every_section(self):
        _result, frames, _reporter = self._run()
        text = format_top(frames[-1])
        assert text.startswith("t=")
        assert "shard 0:" in text
        assert "nf inst1:" in text
        assert "pkt/s" in text
        assert "sampling:" in text

    def test_reporter_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ProgressReporter(None, interval_ms=0.0)
