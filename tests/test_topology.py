"""Tests for the two-tier (spine + leaf) topology."""

import pytest

from repro.flowspace import Filter, FiveTuple
from repro.harness.properties import check_loss_free, check_order_preserving
from repro.net.topology import TwoTierTopology
from repro.nfs.monitor import AssetMonitor
from repro.traffic import TraceConfig, TraceReplayer, build_university_cloud_trace
from tests.conftest import make_packet

LOCAL = Filter({"nw_src": "10.0.0.0/8"}, symmetric=True)


def build():
    topo = TwoTierTopology()
    src = AssetMonitor(topo.sim, "prads1")
    dst = AssetMonitor(topo.sim, "prads2")
    topo.add_nf_behind_leaf(src)
    topo.add_nf_behind_leaf(dst)
    topo.set_default_route("prads1")
    return topo, src, dst


class TestTwoTier:
    def test_traffic_traverses_spine_and_leaf(self, flow):
        topo, src, _dst = build()
        topo.inject(make_packet(flow, flags=("SYN",)))
        topo.sim.run()
        assert src.packets_processed == 1
        assert topo.leaves["leaf-prads1"].received == 1

    def test_latency_adds_across_tiers(self, flow):
        topo, src, _dst = build()
        topo.inject(make_packet(flow))
        topo.sim.run()
        done_at = src.processing_log[0][0]
        # spine->leaf link + leaf->nf link + processing, at least.
        assert done_at >= topo.leaf_latency_ms + topo.nf_link_latency_ms

    def test_packet_out_reaches_nf_behind_leaf(self, flow):
        topo, src, _dst = build()
        packet = make_packet(flow)
        topo.controller.switch_client.packet_out(
            packet, topo.controller.port_of("prads1")
        )
        topo.sim.run()
        assert src.packets_processed == 1

    def test_lossfree_move_across_leaves(self):
        topo, src, dst = build()
        trace = build_university_cloud_trace(
            TraceConfig(seed=9, n_flows=60, data_packets=20)
        )
        replayer = TraceReplayer(topo.sim, topo.inject, trace.packets, 2500.0)
        replayer.start()
        holder = {}
        topo.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(op=topo.controller.move(
                "prads1", "prads2", LOCAL, guarantee="lf")),
        )
        topo.sim.run()
        report = holder["op"].done.value
        assert report.aborted is None
        assert report.packets_dropped == 0
        assert dst.conn_count() == 60
        ok, detail = check_loss_free(topo.spine, [src, dst])
        # The spine's forward_log uses leaf-port actions; adapt the check
        # by leaf naming: the property helper needs NF-port names, so we
        # check using the leaf ports.
        from repro.harness.properties import switch_forwarding_order

        forwarded = switch_forwarding_order(
            topo.spine, ["leaf-prads1", "leaf-prads2"]
        )
        processed = {uid for nf in (src, dst) for (_t, uid) in nf.processing_log}
        assert set(forwarded) <= processed

    def test_order_preserving_move_across_leaves(self):
        topo, src, dst = build()
        trace = build_university_cloud_trace(
            TraceConfig(seed=9, n_flows=40, data_packets=20)
        )
        replayer = TraceReplayer(topo.sim, topo.inject, trace.packets, 4000.0)
        replayer.start()
        holder = {}
        topo.sim.schedule(
            replayer.duration_ms / 2,
            lambda: holder.update(op=topo.controller.move(
                "prads1", "prads2", LOCAL, guarantee="op")),
        )
        topo.sim.run()
        report = holder["op"].done.value
        assert report.aborted is None
        # Per-flow processing order must match spine forwarding order.
        from repro.harness.properties import (
            merged_processing_order,
            switch_forwarding_order,
        )

        uid_set = {p.uid for p in replayer.injected}
        forwarded = switch_forwarding_order(
            topo.spine, ["leaf-prads1", "leaf-prads2"], uid_set
        )
        processed = merged_processing_order([src, dst], uid_set)
        processed_set = set(processed)
        forwarded = [uid for uid in forwarded if uid in processed_set]
        # Build per-flow sequences.
        by_flow = {}
        for packet in replayer.injected:
            key = packet.five_tuple.canonical()
            by_flow.setdefault(key, []).append(packet.uid)
        fwd_rank = {uid: i for i, uid in enumerate(forwarded)}
        proc_rank = {uid: i for i, uid in enumerate(processed)}
        for uids in by_flow.values():
            fwd = sorted((u for u in uids if u in fwd_rank),
                         key=lambda u: fwd_rank[u])
            prc = sorted((u for u in uids if u in proc_rank),
                         key=lambda u: proc_rank[u])
            assert fwd == prc
