"""Causal trace propagation across the control plane.

Every span an operation causes — the northbound phases, the southbound
RPCs (batched or not), and the NF-side apply/flush work triggered by
those RPCs — carries the operation's ``trace_id`` and a ``cause_id``
pointing at the span that caused it. Together they form a connected
causal tree rooted at the operation span, even when messages ride in
batched frames or are retried and deduplicated by the reliable
transport: a retry stays *inside* its RPC span as an event rather than
minting a second span.
"""

import pytest

from repro.harness import run_move_experiment

pytestmark = pytest.mark.obs


def spans_of(result):
    return list(result.deployment.obs.exporter.spans)


def causal_tree(spans, trace_id):
    """(members, orphans): spans in the trace, and cause-less ones."""
    members = [
        s for s in spans if s.attrs.get("trace_id") == trace_id
    ]
    ids = {s.span_id for s in members}
    orphans = [
        s for s in members
        if s.span_id != trace_id            # not the root itself
        and s.attrs.get("cause_id") not in ids
        and s.parent_id not in ids          # nor nested under a member
    ]
    return members, orphans


def run(**kwargs):
    result = run_move_experiment(
        guarantee="op", n_flows=30, seed=5, observe=True, **kwargs
    )
    assert result.report.aborted is None
    return result


class TestCausalTree:
    def _assert_connected(self, result):
        spans = spans_of(result)
        roots = [s for s in spans
                 if s.attrs.get("trace_id") == s.span_id]
        assert len(roots) == 1
        (root,) = roots
        assert root.name == "move"
        members, orphans = causal_tree(spans, root.span_id)
        assert orphans == []
        names = {s.name for s in members}
        # The tree spans all three layers: northbound phases,
        # southbound RPCs, and NF-side work.
        assert any(n.startswith("move.") for n in names)
        assert any(n.startswith("sb.") for n in names)
        assert "nf.apply" in names and "nf.flush" in names
        return members

    def test_plain_move_tree_is_connected(self):
        self._assert_connected(run())

    def test_batched_frames_preserve_causality(self):
        members = self._assert_connected(run(batching=True))
        # Batching must not strip attribution from the put stream.
        assert any(s.name == "sb.put.perflow" for s in members)

    def test_retried_rpcs_stay_in_the_tree(self):
        result = run(fault_plan="seed=3,drop=0.08")
        assert result.report.retries > 0
        members = self._assert_connected(result)
        retry_events = [
            (span, event)
            for span in members
            for event in span.events
            if event[1] == "retry"
        ]
        # Retries are events inside the original RPC span — the span
        # count does not grow with the retry count.
        assert len(retry_events) == result.report.retries
        assert all(span.name.startswith("sb.")
                   for span, _event in retry_events)

    def test_nf_side_spans_point_at_their_rpc(self):
        spans = spans_of(run())
        by_id = {s.span_id: s for s in spans}
        applies = [s for s in spans if s.name == "nf.apply"]
        flushes = [s for s in spans if s.name == "nf.flush"]
        assert applies and flushes
        for span in applies:
            cause = by_id[span.attrs["cause_id"]]
            assert cause.name == "sb.put.perflow"
            assert cause.attrs["trace_id"] == span.attrs["trace_id"]
        for span in flushes:
            cause = by_id[span.attrs["cause_id"]]
            assert cause.name.startswith("sb.")

    def test_unrelated_spans_stay_outside_the_tree(self):
        spans = spans_of(run())
        root_id = next(s.span_id for s in spans
                       if s.attrs.get("trace_id") == s.span_id)
        outside = [s for s in spans
                   if s.attrs.get("trace_id") not in (root_id,)]
        # Drop spans from pre/post-move traffic (none here) and any
        # un-caused infrastructure spans carry no trace id at all.
        assert all("trace_id" not in s.attrs for s in outside)


class TestRecordPropagation:
    def test_buffer_and_release_records_carry_trace_id(self):
        result = run()
        obs = result.deployment.obs
        root_id = next(s.span_id for s in obs.exporter.spans
                       if s.attrs.get("trace_id") == s.span_id)
        tagged = [r for r in obs.exporter.records
                  if r.get("name", "").startswith("ctrl.")]
        assert tagged
        assert all(r["trace_id"] == root_id for r in tagged)

    def test_op_lifecycle_records(self):
        result = run()
        records = result.deployment.obs.exporter.records
        starts = [r for r in records if r.get("name") == "op.start"]
        ends = [r for r in records if r.get("name") == "op.end"]
        assert len(starts) == len(ends) == 1
        assert starts[0]["trace_id"] == ends[0]["trace_id"]
        assert starts[0]["kind"] == "move"
        assert "order-preserving" in starts[0]["guarantee"]
