"""Tests for traffic generation and replay."""

import pytest

from repro.flowspace.fivetuple import FiveTuple
from repro.sim import Simulator
from repro.traffic import (
    MALWARE_BODY,
    TraceConfig,
    TraceReplayer,
    build_cellular_trace,
    build_datacenter_trace,
    build_university_cloud_trace,
    http_exchange,
    malware_signatures,
    port_scan,
    tcp_flow,
)


class TestFlowBuilders:
    def test_tcp_flow_structure(self):
        flow = tcp_flow(FiveTuple("10.0.0.1", 1000, "10.0.0.2", 80),
                        data_packets=4)
        flags = [b.tcp_flags for b in flow.packets]
        assert flags[0] == ("SYN",)
        assert flags[1] == ("SYN", "ACK")
        assert any("FIN" in f for f in flags)
        assert len(flow) == 3 + 4 + 2

    def test_tcp_flow_without_close(self):
        flow = tcp_flow(FiveTuple("10.0.0.1", 1000, "10.0.0.2", 80), close=False)
        assert not any("FIN" in b.tcp_flags for b in flow.packets)

    def test_http_exchange_request_and_reply(self):
        flow = http_exchange("10.0.1.2", 1234, "203.0.113.5",
                             url="/obj", reply_body="B" * 3000, reply_chunk=1000)
        request = [b for b in flow.packets if b.payload.startswith("GET ")]
        assert len(request) == 1
        assert "/obj" in request[0].payload
        reply_data = [b for b in flow.packets
                      if b.five_tuple.src_ip == "203.0.113.5" and b.payload]
        assert len(reply_data) == 4  # header+3000B at 1000B/chunk
        # Sequence offsets contiguous.
        offsets = sorted(b.seq for b in reply_data)
        assert offsets[0] == 0

    def test_port_scan_one_packet_flows(self):
        probes = port_scan("1.2.3.4", ["10.0.0.1", "10.0.0.2"], ports=(22, 80))
        assert len(probes) == 4
        assert all(len(p) == 1 for p in probes)
        src_ports = {p.packets[0].five_tuple.src_port for p in probes}
        assert len(src_ports) == 4  # distinct flows

    def test_blueprints_build_fresh_packets(self):
        flow = tcp_flow(FiveTuple("10.0.0.1", 1000, "10.0.0.2", 80))
        first = flow.packets[0].build(1.0)
        second = flow.packets[0].build(2.0)
        assert first.uid != second.uid
        assert second.created_at == 2.0


class TestTraces:
    def test_university_trace_deterministic(self):
        config = TraceConfig(seed=5, n_flows=30)
        a = build_university_cloud_trace(config)
        b = build_university_cloud_trace(config)
        assert [x.payload for x in a.packets] == [x.payload for x in b.packets]
        assert a.flow_count == 30

    def test_different_seeds_differ(self):
        a = build_university_cloud_trace(TraceConfig(seed=1, n_flows=30))
        b = build_university_cloud_trace(TraceConfig(seed=2, n_flows=30))
        assert [x.payload for x in a.packets] != [x.payload for x in b.packets]

    def test_malware_flows_present(self):
        trace = build_university_cloud_trace(
            TraceConfig(seed=3, n_flows=100, malware_fraction=0.2)
        )
        malicious = [f for f in trace.flows if f.kind.startswith("http-malware")]
        assert malicious
        assert any(MALWARE_BODY in b.payload for f in malicious for b in f.packets
                   if b.payload)

    def test_scanners_add_probe_flows(self):
        trace = build_university_cloud_trace(
            TraceConfig(seed=3, n_flows=10, n_scanners=2, scan_targets=8)
        )
        assert trace.flows_of_kind("scan")

    def test_interleaving_keeps_flows_concurrent(self):
        trace = build_university_cloud_trace(TraceConfig(seed=4, n_flows=10))
        first_sources = {b.five_tuple.canonical() for b in trace.packets[:10]}
        assert len(first_sources) == 10  # round-robin across all flows

    def test_datacenter_trace_mix(self):
        trace = build_datacenter_trace(TraceConfig(seed=6, n_flows=50))
        kinds = {f.kind for f in trace.flows}
        assert "mice" in kinds
        assert trace.flow_count == 50

    def test_cellular_trace_long_tail(self):
        trace = build_cellular_trace(
            TraceConfig(seed=8, n_flows=100, long_flow_fraction=0.4)
        )
        long_flows = trace.flows_of_kind("cellular-long")
        assert 25 <= len(long_flows) <= 55  # ~40 % of flows
        # Long flows are much longer than the m2m heartbeats.
        m2m = trace.flows_of_kind("cellular-m2m")
        assert m2m
        assert len(long_flows[0]) > 5 * len(m2m[0])

    def test_cellular_trace_deterministic(self):
        config = TraceConfig(seed=4, n_flows=20)
        a = build_cellular_trace(config)
        b = build_cellular_trace(config)
        assert [x.payload for x in a.packets] == [x.payload for x in b.packets]

    def test_signatures_match_malware_body(self):
        import hashlib

        assert hashlib.md5(MALWARE_BODY.encode()).hexdigest() in \
            malware_signatures()


class TestReplayer:
    def test_replay_at_rate(self, sim):
        trace = build_university_cloud_trace(TraceConfig(seed=1, n_flows=5))
        injected_times = []
        replayer = TraceReplayer(
            sim, lambda p: injected_times.append(sim.now),
            trace.packets, rate_pps=1000.0,
        )
        replayer.start()
        sim.run()
        assert len(injected_times) == len(trace.packets)
        assert injected_times[1] - injected_times[0] == pytest.approx(1.0)
        assert replayer.finished.triggered

    def test_replay_records_injected_packets(self, sim):
        trace = build_university_cloud_trace(TraceConfig(seed=1, n_flows=3))
        replayer = TraceReplayer(sim, lambda p: None, trace.packets,
                                 rate_pps=2500.0)
        replayer.start()
        sim.run()
        assert len(replayer.injected) == len(trace.packets)
        assert replayer.injected[0].created_at == 0.0

    def test_double_start_rejected(self, sim):
        replayer = TraceReplayer(sim, lambda p: None, [], rate_pps=100.0)
        replayer.start()
        with pytest.raises(RuntimeError):
            replayer.start()

    def test_duration_property(self, sim):
        trace = build_university_cloud_trace(TraceConfig(seed=1, n_flows=5))
        replayer = TraceReplayer(sim, lambda p: None, trace.packets,
                                 rate_pps=2000.0)
        assert replayer.duration_ms == pytest.approx(len(trace.packets) * 0.5)


class TestTraceSerialization:
    def test_roundtrip(self, tmp_path):
        from repro.traffic import load_trace, save_trace

        trace = build_university_cloud_trace(TraceConfig(seed=2, n_flows=12))
        path = str(tmp_path / "trace.jsonl")
        written = save_trace(trace, path)
        assert written == len(trace.packets)
        loaded = load_trace(path)
        assert len(loaded.packets) == len(trace.packets)
        assert [b.payload for b in loaded.packets] == \
            [b.payload for b in trace.packets]
        assert [b.tcp_flags for b in loaded.packets] == \
            [b.tcp_flags for b in trace.packets]
        assert loaded.flow_count == trace.flow_count

    def test_loaded_trace_replays_identically(self, sim, tmp_path):
        from repro.traffic import load_trace, save_trace

        trace = build_university_cloud_trace(TraceConfig(seed=3, n_flows=5))
        path = str(tmp_path / "trace.jsonl")
        save_trace(trace, path)
        loaded = load_trace(path)
        seen = []
        TraceReplayer(sim, lambda p: seen.append(p.payload),
                      loaded.packets, 1000.0).start()
        sim.run()
        assert seen == [b.payload for b in trace.packets]

    def test_rejects_foreign_files(self, tmp_path):
        from repro.traffic import load_trace

        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_rejects_truncated_trace(self, tmp_path):
        from repro.traffic import load_trace, save_trace

        trace = build_university_cloud_trace(TraceConfig(seed=3, n_flows=3))
        path = str(tmp_path / "trace.jsonl")
        save_trace(trace, path)
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-2])
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        from repro.traffic import load_trace

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            load_trace(str(path))
